// Paper Table V: iterations with and without initial guesses for
// systems at 10% / 30% / 50% volume occupancy, over 24 steps.
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 2000;
  int steps = 24;
  bench::BenchHarness harness("tab05_iterations_occupancy");
  util::ArgParser args("tab05_iterations_occupancy",
                       "Reproduce paper Table V");
  args.add("particles", particles, "particles (paper: 300k; scaled)");
  args.add("steps", steps, "steps (paper tabulates 2..24)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table V — iterations with and without initial guesses vs occupancy",
      "with guesses: 8-9 / 12-15 / 80-89 and without: 16 / 30 / 162-163 "
      "for phi = 0.1 / 0.3 / 0.5 — a 30-50% reduction from the guesses");

  const std::vector<double> phis = {0.1, 0.3, 0.5};
  std::vector<std::vector<std::size_t>> with(phis.size()),
      without(phis.size());

  for (std::size_t c = 0; c < phis.size(); ++c) {
    core::SdConfig config;
    config.particles = static_cast<std::size_t>(particles);
    config.phi = phis[c];
    config.seed = 42;
    {
      core::SdSimulation sim(config);
      core::MrhsAlgorithm mrhs(sim, {.rhs = static_cast<std::size_t>(steps)});
      const auto stats = mrhs.run(static_cast<std::size_t>(steps));
      for (const auto& rec : stats.steps) {
        with[c].push_back(rec.iters_first_solve);
      }
    }
    {
      core::SdSimulation sim(config);
      core::OriginalAlgorithm orig(sim);
      const auto stats = orig.run(static_cast<std::size_t>(steps));
      for (const auto& rec : stats.steps) {
        without[c].push_back(rec.iters_first_solve);
      }
    }
  }

  util::Table table({"Step", "with 0.1", "with 0.3", "with 0.5",
                     "w/o 0.1", "w/o 0.3", "w/o 0.5"});
  for (int k = 2; k < steps; k += 2) {
    table.add_row({std::to_string(k), std::to_string(with[0][k]),
                   std::to_string(with[1][k]), std::to_string(with[2][k]),
                   std::to_string(without[0][k]),
                   std::to_string(without[1][k]),
                   std::to_string(without[2][k])});
  }
  table.print("first-solve iterations (columns: occupancy):");

  for (std::size_t c = 0; c < phis.size(); ++c) {
    double w = 0, wo = 0;
    for (int k = 1; k < steps; ++k) {
      w += static_cast<double>(with[c][k]);
      wo += static_cast<double>(without[c][k]);
    }
    std::printf("phi = %.1f: mean with %.1f, without %.1f -> %.0f%% "
                "reduction\n",
                phis[c], w / (steps - 1), wo / (steps - 1),
                100.0 * (1.0 - w / wo));
    const std::string suffix = util::Table::fmt(phis[c], 2);
    harness.report().set_value("iters_with_guess.phi=" + suffix,
                               w / (steps - 1));
    harness.report().set_value("iters_without_guess.phi=" + suffix,
                               wo / (steps - 1));
  }
  harness.finish("Table V — iterations with/without guesses vs occupancy");
  return 0;
}
