// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench prints (1) what it reproduces, (2) the paper's reported
// values where they exist, and (3) the values measured here, in a
// layout close to the paper's so EXPERIMENTS.md can be filled by
// reading the output. BenchHarness additionally writes the
// machine-readable obs::BenchReport sidecar next to the printed table
// (scripts/bench_runner.py merges those into the BENCH_<date>.json
// trajectory).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/stepper.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_ledger.hpp"
#include "perf/machine.hpp"
#include "sparse/kernel_dispatch.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace mrhs::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_summary.c_str());
  std::printf("================================================================\n\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Per-step seconds of one phase (amortized over the steps of a run).
inline double per_step(const core::RunStats& stats, const char* phase) {
  return stats.steps.empty()
             ? 0.0
             : stats.timers.seconds(phase) /
                   static_cast<double>(stats.steps.size());
}

/// The Tables VI/VII row set: per-step phase timings for a run, "-"
/// where the phase does not occur.
inline std::vector<std::string> breakdown_column(
    const core::RunStats& stats, bool is_mrhs) {
  auto fmt = [&](const char* phase) {
    return util::Table::fmt(per_step(stats, phase), 3);
  };
  std::vector<std::string> col;
  col.push_back(is_mrhs ? fmt(core::phase::kChebVectors) : "-");
  col.push_back(is_mrhs ? fmt(core::phase::kCalcGuesses) : "-");
  col.push_back(fmt(core::phase::kChebSingle));
  col.push_back(fmt(core::phase::kFirstSolve));
  col.push_back(fmt(core::phase::kSecondSolve));
  col.push_back(fmt(core::phase::kConstruct));
  col.push_back(fmt(core::phase::kEigBounds));
  col.push_back(util::Table::fmt(stats.avg_step_seconds(), 3));
  return col;
}

inline const std::vector<std::string>& breakdown_rows() {
  static const std::vector<std::string> rows = {
      "Cheb vectors", "Calc guesses", "Cheb single", "1st solve",
      "2nd solve",    "Construct",    "Eig bounds",  "Average"};
  return rows;
}

/// One-stop observability for a bench binary: the ObsCli flags, the
/// metrics registry, the roofline ledger, and the BenchReport sidecar.
///
///   bench::BenchHarness harness("tab02_spmv_baseline");
///   util::ArgParser args(...);
///   harness.add_to(args);          // --report-out, --machine-probe,
///   args.parse(argc, argv);        // --trace-out, --metrics-out, ...
///   harness.begin();               // metrics on, counter baseline
///   ... run, print the table ...
///   harness.report().set_value("speedup", s);
///   harness.finish("Table II — SPMV baseline");  // writes sidecar
///
/// The sidecar defaults to "<bench>.report.json" in the cwd
/// (MRHS_REPORT_OUT overrides the default; --report-out overrides
/// both; "off" disables it). If the bench never probed the machine
/// itself (set_machine), finish() runs the cheap cached probe so every
/// report carries a roofline — "--machine-probe off" skips that.
class BenchHarness {
 public:
  explicit BenchHarness(std::string name)
      : name_(std::move(name)), report_(name_) {
    report_out_ = name_ + ".report.json";
    if (const char* env = std::getenv("MRHS_REPORT_OUT")) report_out_ = env;
    if (const char* sha = std::getenv("MRHS_GIT_SHA")) {
      report_.set_git_sha(sha);
    }
  }

  void add_to(util::ArgParser& args) {
    args.add("report-out", report_out_,
             "bench report JSON sidecar path (off = disabled)");
    args.add("machine-probe", machine_probe_,
             "roofline machine probe: quick, full, or off");
    obs_cli_.add_to(args);
  }

  /// Arm trace/metrics outputs, switch the metrics registry on (the
  /// ledger needs the kernel counters), and snapshot the baseline.
  void begin() {
    obs_cli_.apply();
    obs::MetricsRegistry::instance().enable();
    ledger_.begin();
  }

  /// A bench that measured B/F itself (fig07, tab08, ...) installs the
  /// measurement so finish() skips the probe.
  void set_machine(const perf::MachineParams& machine) {
    ledger_.set_machine(machine);
  }

  [[nodiscard]] obs::PerfLedger& ledger() { return ledger_; }
  [[nodiscard]] obs::BenchReport& report() { return report_; }

  /// Copy a run's per-phase wall-clock breakdown into the ledger,
  /// optionally prefixed ("mrhs/1st solve") to keep variants apart.
  void add_phases(const core::RunStats& stats,
                  const std::string& prefix = "") {
    for (const auto& name : stats.timers.names()) {
      ledger_.add_phase(prefix + name, stats.timers.seconds(name),
                        stats.timers.calls(name));
    }
  }

  /// Collect, attribute, and write the sidecar; flushes the ObsCli
  /// outputs too. Call once, after the printed tables.
  void finish(const std::string& title) {
    report_.set_title(title);
    report_.set_threads(util::max_threads());
#ifdef NDEBUG
    report_.set_info("build", "release");
#else
    report_.set_info("build", "debug");
#endif
    // Which ISA the dispatcher would pick and what was compiled in —
    // without this a BENCH_*.json regression across machines/builds
    // cannot tell an algorithmic slowdown from a kernel downgrade.
    report_.set_info("kernel_dispatch",
                     sparse::kernels::Dispatch::instance().describe());
    if (!ledger_.has_machine() && machine_probe_ != "off") {
      ledger_.set_machine(machine_probe_ == "full"
                              ? perf::measure_machine()
                              : perf::measure_machine_quick());
    }
    report_.set_ledger(ledger_.collect());
    report_.capture_histograms();
    if (!report_out_.empty() && report_out_ != "off") {
      if (report_.write_file(report_out_)) {
        std::printf("bench report: %s\n", report_out_.c_str());
      }
    }
    obs_cli_.finish();
  }

 private:
  std::string name_;
  std::string report_out_;
  std::string machine_probe_ = "quick";
  util::ObsCli obs_cli_;
  obs::PerfLedger ledger_;
  obs::BenchReport report_;
};

}  // namespace mrhs::bench
