// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench prints (1) what it reproduces, (2) the paper's reported
// values where they exist, and (3) the values measured here, in a
// layout close to the paper's so EXPERIMENTS.md can be filled by
// reading the output.
#pragma once

#include <cstdio>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace mrhs::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_summary.c_str());
  std::printf("================================================================\n\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace mrhs::bench

#include "core/stepper.hpp"

namespace mrhs::bench {

/// Per-step seconds of one phase (amortized over the steps of a run).
inline double per_step(const core::RunStats& stats, const char* phase) {
  return stats.steps.empty()
             ? 0.0
             : stats.timers.seconds(phase) /
                   static_cast<double>(stats.steps.size());
}

/// The Tables VI/VII row set: per-step phase timings for a run, "-"
/// where the phase does not occur.
inline std::vector<std::string> breakdown_column(
    const core::RunStats& stats, bool is_mrhs) {
  auto fmt = [&](const char* phase) {
    return util::Table::fmt(per_step(stats, phase), 3);
  };
  std::vector<std::string> col;
  col.push_back(is_mrhs ? fmt(core::phase::kChebVectors) : "-");
  col.push_back(is_mrhs ? fmt(core::phase::kCalcGuesses) : "-");
  col.push_back(fmt(core::phase::kChebSingle));
  col.push_back(fmt(core::phase::kFirstSolve));
  col.push_back(fmt(core::phase::kSecondSolve));
  col.push_back(fmt(core::phase::kConstruct));
  col.push_back(fmt(core::phase::kEigBounds));
  col.push_back(util::Table::fmt(stats.avg_step_seconds(), 3));
  return col;
}

inline const std::vector<std::string>& breakdown_rows() {
  static const std::vector<std::string> rows = {
      "Cheb vectors", "Calc guesses", "Cheb single", "1st solve",
      "2nd solve",    "Construct",    "Eig bounds",  "Average"};
  return rows;
}

}  // namespace mrhs::bench
