// Paper Table VIII: the GSPMV bandwidth->compute crossover m_s next to
// the model-optimal number of right-hand sides m_optimal for five
// systems — the paper's conclusion is that they nearly coincide.
#include <vector>

#include "bench_common.hpp"
#include "core/mrhs_model.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "perf/machine.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int scale = 100;  // paper sizes divided by this
  bench::BenchHarness harness("tab08_moptimal");
  util::ArgParser args("tab08_moptimal", "Reproduce paper Table VIII");
  args.add("scale", scale, "divide the paper's particle counts by this");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table VIII — m_s vs m_optimal for five systems",
      "(3k,50%): 5/4  (30k,50%): 12/10  (300k,10%): 15/12  "
      "(300k,30%): 13/10  (300k,50%): 12/10 — m_optimal ~ m_s");

  struct System {
    std::size_t paper_particles;
    double phi;
  };
  const std::vector<System> systems = {{3000, 0.5},
                                       {30000, 0.5},
                                       {300000, 0.1},
                                       {300000, 0.3},
                                       {300000, 0.5}};
  const char* paper[] = {"5 / 4", "12 / 10", "15 / 12", "13 / 10",
                         "12 / 10"};

  const auto machine = perf::measure_machine();
  harness.set_machine(machine);
  util::Table table({"paper system", "particles here", "m_s", "m_optimal",
                     "paper m_s / m_opt"});
  int row = 0;
  for (const auto& sys : systems) {
    const std::size_t particles =
        std::max<std::size_t>(300, sys.paper_particles /
                                       static_cast<std::size_t>(scale));
    core::SdConfig config;
    config.particles = particles;
    config.phi = sys.phi;
    config.seed = 42;

    core::MrhsCostModel model;
    core::SdSimulation sim(config);
    const auto r = sim.assemble().matrix;
    model.gspmv.block_rows = static_cast<double>(r.block_rows());
    model.gspmv.nonzero_blocks = static_cast<double>(r.nnzb());
    model.gspmv.bandwidth = machine.bandwidth;
    model.gspmv.flops = machine.flops;
    model.chebyshev_order = static_cast<double>(config.chebyshev_order);

    // Measure the iteration counts that parameterize T_mrhs.
    core::SdSimulation sim_orig(config);
    core::OriginalAlgorithm orig(sim_orig);
    const auto st_orig = orig.run(3);
    model.iters_no_guess = st_orig.mean_first_solve_iters();
    double n2 = 0;
    for (const auto& rec : st_orig.steps) {
      n2 += static_cast<double>(rec.iters_second_solve);
    }
    model.iters_second = n2 / static_cast<double>(st_orig.steps.size());
    core::SdSimulation sim_mrhs(config);
    core::MrhsAlgorithm mrhs(sim_mrhs, {.rhs = 8});
    const auto st_mrhs = mrhs.run(8);
    double n1 = 0;
    for (std::size_t k = 1; k < st_mrhs.steps.size(); ++k) {
      n1 += static_cast<double>(st_mrhs.steps[k].iters_first_solve);
    }
    model.iters_first_guess =
        n1 / static_cast<double>(st_mrhs.steps.size() - 1);

    table.add_row({std::to_string(sys.paper_particles) + " @ " +
                       util::Table::fmt(sys.phi, 2),
                   std::to_string(particles),
                   std::to_string(model.crossover_m(64)),
                   std::to_string(model.optimal_m(64)), paper[row++]});
    const std::string sys_key = std::to_string(sys.paper_particles) +
                                "@" + util::Table::fmt(sys.phi, 2);
    harness.report().set_value("m_s." + sys_key,
                               static_cast<double>(model.crossover_m(64)));
    harness.report().set_value("m_optimal." + sys_key,
                               static_cast<double>(model.optimal_m(64)));
  }
  table.print();
  bench::print_note(
      "m_s and m_optimal depend on nnzb/nb and this machine's B/F, so "
      "absolute values shift with hardware; the invariant is "
      "m_optimal <= m_s and the two being close.");
  harness.finish("Table VIII — m_s vs m_optimal for five systems");
  return 0;
}
