// Paper Figure 3: multi-node GSPMV relative time r(m, p) for mat1 and
// mat2, p in {1, 4, 16, 64}. Partitioning, halo volumes and load
// balance are computed from the real matrices via the executed
// distributed-GSPMV substrate; wire timings use the alpha-beta model
// (see DESIGN.md substitutions).
#include <vector>

#include "bench_common.hpp"
#include "cluster/comm_model.hpp"
#include "cluster/partitioner.hpp"
#include "core/workloads.hpp"
#include "sd/assembly_engine.hpp"
#include "sd/packing.hpp"
#include "sd/radii.hpp"
#include "sd/resistance.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 20000;
  int paper_particles = 300000;
  int max_m = 32;
  bench::BenchHarness harness("fig03_multinode");
  util::ArgParser args("fig03_multinode", "Reproduce paper Fig. 3");
  args.add("particles", particles, "particles per system");
  args.add("paper_particles", paper_particles,
           "system size the timing model extrapolates to");
  args.add("max_m", max_m, "largest vector count (paper sweeps to 32)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 3 — multi-node relative time r(m, p), mat1 and mat2",
      "curves for 4/16 nodes sit slightly above single-node; at 64 "
      "nodes communication dominates and r(m) is much flatter/lower");

  // Rebuild the suite systems here because the partitioner needs the
  // particle coordinates alongside each matrix.
  auto radii = sd::sample_radii(sd::ecoli_cytoplasm_distribution(),
                                static_cast<std::size_t>(particles), 42);
  sd::PackingParams packing;
  packing.seed = 42;
  const auto system = sd::pack_particles(std::move(radii), 0.5, packing);

  const auto specs =
      core::paper_matrix_suite(static_cast<std::size_t>(particles), 42);
  const std::vector<std::size_t> nodes = {1, 4, 16, 64};
  std::vector<std::size_t> ms;
  for (int m = 1; m <= max_m; m = m < 4 ? m + 1 : m + 2) {
    ms.push_back(static_cast<std::size_t>(m));
  }

  for (std::size_t which : {0u, 1u}) {  // mat1, mat2
    sd::ResistanceParams params;
    params.lubrication.max_gap_scaled = specs[which].cutoff;
    const auto matrix = sd::AssemblyEngine(params).assemble_full(system).matrix;

    std::vector<std::string> headers = {"m"};
    for (std::size_t p : nodes) {
      headers.push_back(std::to_string(p) + " node" + (p > 1 ? "s" : ""));
    }
    util::Table table(headers);

    std::vector<cluster::ClusterTimeModel> models;
    std::vector<cluster::CommPlan> plans;
    plans.reserve(nodes.size());
    cluster::ClusterParams cp;
    cp.volume_scale = static_cast<double>(paper_particles) /
                      static_cast<double>(particles);
    for (std::size_t p : nodes) {
      const auto part = cluster::partition_coordinate_grid(system, matrix, p);
      plans.emplace_back(matrix, part);
      models.emplace_back(plans.back(), matrix.block_rows(), cp);
    }
    for (std::size_t m : ms) {
      std::vector<std::string> row = {std::to_string(m)};
      for (const auto& model : models) {
        row.push_back(util::Table::fmt_fixed(model.relative_time(m), 2));
      }
      table.add_row(std::move(row));
    }
    // Built up with += : the nested operator+ chain trips a gcc 12
    // -Wrestrict false positive in the inlined char_traits copy.
    std::string title = which == 0 ? "(a) " : "(b) ";
    title += specs[which].name;
    title += " (nnzb/nb = ";
    title += util::Table::fmt_fixed(matrix.blocks_per_row(), 1);
    title += "):";
    table.print(title);
    std::printf("\n");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      harness.report().set_value("r_m8." + specs[which].name + ".nodes=" +
                                     std::to_string(nodes[i]),
                                 models[i].relative_time(8));
    }
  }
  harness.finish("Figure 3 — multi-node relative time r(m, p)");
  return 0;
}
