// Paper Table VI: per-step timing breakdown, MRHS vs original
// algorithm, for varying problem sizes at 50% occupancy.
// ("Construct" and "Eig bounds" are printed as extra rows; the paper
// folds them into its Average.)
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  std::string sizes = "1000,3000,8000";
  double phi = 0.5;
  int rhs = 16;
  int steps = 16;
  bench::BenchHarness harness("tab06_timings_size");
  util::ArgParser args("tab06_timings_size", "Reproduce paper Table VI");
  args.add("sizes", sizes,
           "comma-separated particle counts (paper: 3k/30k/300k)");
  args.add("phi", phi, "volume occupancy (paper: 0.5)");
  args.add("rhs", rhs, "right-hand sides per chunk (paper: 16)");
  args.add("steps", steps, "steps per measurement");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table VI — per-step timing breakdown vs problem size (phi = " +
          util::Table::fmt(phi, 2) + ", m = " + std::to_string(rhs) + ")",
      "MRHS averages 0.021/0.36/5.46 s vs original 0.023/0.49/7.70 s at "
      "3k/30k/300k particles — a 10-30% speedup");

  std::vector<std::size_t> particle_counts;
  for (std::size_t pos = 0; pos < sizes.size();) {
    const auto comma = sizes.find(',', pos);
    particle_counts.push_back(std::stoul(sizes.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<std::string> headers = {"Phase"};
  for (std::size_t n : particle_counts) {
    headers.push_back("MRHS " + std::to_string(n));
  }
  for (std::size_t n : particle_counts) {
    headers.push_back("Orig " + std::to_string(n));
  }
  std::vector<std::vector<std::string>> columns;
  std::vector<double> mrhs_avg, orig_avg;

  for (std::size_t n : particle_counts) {
    core::SdConfig config;
    config.particles = n;
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    core::MrhsAlgorithm mrhs(sim, {.rhs = static_cast<std::size_t>(rhs)});
    const auto stats = mrhs.run(static_cast<std::size_t>(steps));
    harness.add_phases(stats, "mrhs.n=" + std::to_string(n) + "/");
    columns.push_back(bench::breakdown_column(stats, /*is_mrhs=*/true));
    mrhs_avg.push_back(stats.avg_step_seconds());
  }
  for (std::size_t n : particle_counts) {
    core::SdConfig config;
    config.particles = n;
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    core::OriginalAlgorithm orig(sim);
    const auto stats = orig.run(static_cast<std::size_t>(steps));
    harness.add_phases(stats, "orig.n=" + std::to_string(n) + "/");
    columns.push_back(bench::breakdown_column(stats, /*is_mrhs=*/false));
    orig_avg.push_back(stats.avg_step_seconds());
  }

  util::Table table(headers);
  const auto& rows = bench::breakdown_rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> row = {rows[r]};
    for (const auto& col : columns) row.push_back(col[r]);
    table.add_row(std::move(row));
  }
  table.print("seconds per time step:");

  for (std::size_t i = 0; i < particle_counts.size(); ++i) {
    std::printf("%zu particles: MRHS %.3g s vs original %.3g s -> %.0f%% "
                "speedup\n",
                particle_counts[i], mrhs_avg[i], orig_avg[i],
                100.0 * (1.0 - mrhs_avg[i] / orig_avg[i]));
    const std::string n = std::to_string(particle_counts[i]);
    harness.report().set_value("mrhs_step_seconds.n=" + n, mrhs_avg[i]);
    harness.report().set_value("orig_step_seconds.n=" + n, orig_avg[i]);
    harness.report().set_value("speedup.n=" + n,
                               orig_avg[i] / mrhs_avg[i]);
  }
  harness.finish("Table VI — per-step timing breakdown vs problem size");
  return 0;
}
