// Paper Table II: performance and bandwidth usage of single-vector
// SPMV (m = 1) on the SD matrices — the baseline all relative times
// divide by. Also prints the measured STREAM bandwidth so the
// "fraction of achievable bandwidth" comparison can be made.
#include "bench_common.hpp"
#include "core/workloads.hpp"
#include "perf/machine.hpp"
#include "perf/measure.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 20000;
  int threads = 0;
  bench::BenchHarness harness("tab02_spmv_baseline");
  util::ArgParser args("tab02_spmv_baseline", "Reproduce paper Table II");
  args.add("particles", particles, "particles per system");
  args.add("threads", threads, "GSPMV threads (0 = all)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table II — SPMV (m = 1) performance and bandwidth usage",
      "mat1/WSM: 17.8 GB/s 3.6 Gflops | mat2/WSM: 18.3 GB/s 4.2 Gflops | "
      "mat3/SNB: 32.0 GB/s 7.4 Gflops (within 3-20% of STREAM)");

  perf::StreamOptions stream;
  const double bandwidth = perf::measure_stream_bandwidth(stream);
  std::printf("measured STREAM triad bandwidth here: %.1f GB/s "
              "(paper: WSM 23, SNB 33)\n\n",
              bandwidth * 1e-9);

  // Roofline against the bench's own full-size STREAM measurement
  // (the quick probe still supplies F).
  perf::MachineParams machine = perf::measure_machine_quick();
  machine.bandwidth = bandwidth;
  harness.set_machine(machine);

  const auto suite =
      core::build_matrix_suite(static_cast<std::size_t>(particles), 42);
  util::Table table({"Matrix", "nnzb/nb", "GB/s", "Gflops",
                     "% of STREAM"});
  for (const auto& sm : suite) {
    const auto t = perf::measure_spmv_throughput(sm.matrix, threads);
    table.add_row({sm.spec.name,
                   util::Table::fmt_fixed(sm.matrix.blocks_per_row(), 1),
                   util::Table::fmt_fixed(t.gbytes_per_sec, 1),
                   util::Table::fmt_fixed(t.gflops, 2),
                   util::Table::fmt_pct(t.gbytes_per_sec * 1e9 / bandwidth,
                                        0)});
    harness.ledger().add_kernel_sample(
        "gspmv@m=1/" + sm.spec.name, t.gbytes_per_sec * 1e9 * t.seconds,
        t.gflops * 1e9 * t.seconds, t.seconds);
    harness.report().set_value("gbps." + sm.spec.name, t.gbytes_per_sec);
    harness.report().set_value("pct_of_stream." + sm.spec.name,
                               t.gbytes_per_sec * 1e9 / bandwidth);
  }
  table.print();
  harness.report().set_value("stream_gbps", bandwidth * 1e-9);
  harness.finish("Table II — SPMV (m = 1) performance and bandwidth usage");
  return 0;
}
