// Paper Figure 4: GSPMV relative time as a function of the number of
// nodes — it rises slightly (gather overhead) and then falls once
// communication dominates.
#include "bench_common.hpp"
#include "cluster/comm_model.hpp"
#include "cluster/partitioner.hpp"
#include "core/workloads.hpp"
#include "sd/assembly_engine.hpp"
#include "sd/packing.hpp"
#include "sd/radii.hpp"
#include "sd/resistance.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 20000;
  int paper_particles = 300000;
  bench::BenchHarness harness("fig04_nodes_sweep");
  util::ArgParser args("fig04_nodes_sweep", "Reproduce paper Fig. 4");
  args.add("particles", particles, "particles per system");
  args.add("paper_particles", paper_particles,
           "system size the timing model extrapolates to");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 4 — relative time vs number of nodes",
      "r(m) increases slightly from 1 to ~16 nodes, then decreases at "
      "32-64 nodes where communication dominates");

  auto radii = sd::sample_radii(sd::ecoli_cytoplasm_distribution(),
                                static_cast<std::size_t>(particles), 42);
  sd::PackingParams packing;
  packing.seed = 42;
  const auto system = sd::pack_particles(std::move(radii), 0.5, packing);

  const auto specs =
      core::paper_matrix_suite(static_cast<std::size_t>(particles), 42);
  for (std::size_t which : {0u, 1u}) {
    sd::ResistanceParams params;
    params.lubrication.max_gap_scaled = specs[which].cutoff;
    const auto matrix = sd::AssemblyEngine(params).assemble_full(system).matrix;

    util::Table table({"nodes", "r(m=8)", "r(m=16)", "r(m=32)"});
    cluster::ClusterParams cp;
    cp.volume_scale = static_cast<double>(paper_particles) /
                      static_cast<double>(particles);
    for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const auto part =
          cluster::partition_coordinate_grid(system, matrix, p);
      const cluster::CommPlan plan(matrix, part);
      const cluster::ClusterTimeModel model(plan, matrix.block_rows(), cp);
      table.add_row({std::to_string(p),
                     util::Table::fmt_fixed(model.relative_time(8), 2),
                     util::Table::fmt_fixed(model.relative_time(16), 2),
                     util::Table::fmt_fixed(model.relative_time(32), 2)});
      harness.report().set_value("r_m16." + specs[which].name + ".nodes=" +
                                     std::to_string(p),
                                 model.relative_time(16));
    }
    table.print(specs[which].name + " (nnzb/nb = " +
                util::Table::fmt_fixed(matrix.blocks_per_row(), 1) + "):");
    std::printf("\n");
  }
  harness.finish("Figure 4 — relative time vs number of nodes");
  return 0;
}
