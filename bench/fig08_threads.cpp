// Paper Figure 8: (a) GSPMV time vs number of threads and (b) MRHS
// speedup over the original algorithm vs number of threads.
//
// On a single-core host the thread sweep is flat — the harness still
// exercises the threaded code paths and records per-thread-count B/F
// so the figure regenerates its intended content on a multicore box.
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "core/workloads.hpp"
#include "perf/measure.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 3000;
  double phi = 0.5;
  int rhs = 16;
  int steps = 8;
  std::string threads_list = "1,2,4,8";
  bench::BenchHarness harness("fig08_threads");
  util::ArgParser args("fig08_threads", "Reproduce paper Fig. 8");
  args.add("particles", particles, "particles (paper: 300k; scaled)");
  args.add("phi", phi, "volume occupancy (paper: 0.5)");
  args.add("rhs", rhs, "right-hand sides (paper: 16)");
  args.add("steps", steps, "steps per measurement");
  args.add("threads_list", threads_list, "comma-separated thread counts");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 8 — GSPMV performance and MRHS speedup vs threads",
      "(a) GSPMV time falls with threads; (b) MRHS speedup grows with "
      "threads (B/F shrinks as threads saturate bandwidth)");
  std::printf("hardware threads available here: %d (backend: %s)\n\n",
              util::hardware_threads(), util::parallel_backend());

  std::vector<int> thread_counts;
  for (std::size_t pos = 0; pos < threads_list.size();) {
    const auto comma = threads_list.find(',', pos);
    thread_counts.push_back(std::stoi(threads_list.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  // (a) GSPMV time vs threads on the mat2-like matrix of this system.
  core::MatrixSpec spec{"mat2-like", static_cast<std::size_t>(particles),
                        phi, 2.05, 42};
  const auto matrix = core::make_sd_matrix(spec);
  util::Table gspmv_table({"threads", "SPMV ms", "GSPMV(m=16) ms",
                           "r(16)"});
  for (int t : thread_counts) {
    const double t1 = perf::measure_gspmv_seconds(matrix, 1, t);
    const double t16 = perf::measure_gspmv_seconds(matrix, 16, t);
    gspmv_table.add_row({std::to_string(t),
                         util::Table::fmt(t1 * 1e3, 3),
                         util::Table::fmt(t16 * 1e3, 3),
                         util::Table::fmt_fixed(t16 / t1, 2)});
    harness.report().set_value("gspmv_m1_ms.threads=" + std::to_string(t),
                               t1 * 1e3);
    harness.report().set_value("r16.threads=" + std::to_string(t),
                               t16 / t1);
  }
  gspmv_table.print("(a) GSPMV wall time vs threads (nnzb/nb = " +
                    util::Table::fmt_fixed(matrix.blocks_per_row(), 1) +
                    "):");

  // (b) end-to-end MRHS speedup vs threads.
  util::Table speedup_table({"threads", "MRHS s/step", "Orig s/step",
                             "speedup"});
  for (int t : thread_counts) {
    core::SdConfig config;
    config.particles = static_cast<std::size_t>(particles);
    config.phi = phi;
    config.seed = 42;
    config.threads = t;
    core::SdSimulation sim_m(config), sim_o(config);
    core::MrhsAlgorithm mrhs(sim_m, {.rhs = static_cast<std::size_t>(rhs)});
    core::OriginalAlgorithm orig(sim_o);
    const auto st_m = mrhs.run(static_cast<std::size_t>(steps));
    const auto st_o = orig.run(static_cast<std::size_t>(steps));
    speedup_table.add_row(
        {std::to_string(t), util::Table::fmt(st_m.avg_step_seconds(), 3),
         util::Table::fmt(st_o.avg_step_seconds(), 3),
         util::Table::fmt_fixed(
             st_o.avg_step_seconds() / st_m.avg_step_seconds(), 2)});
    harness.report().set_value(
        "speedup.threads=" + std::to_string(t),
        st_o.avg_step_seconds() / st_m.avg_step_seconds());
  }
  speedup_table.print("\n(b) MRHS speedup over the original algorithm:");
  harness.finish("Figure 8 — GSPMV performance and MRHS speedup vs threads");
  return 0;
}
