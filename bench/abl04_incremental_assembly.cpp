// Ablation: incremental resistance assembly (sd::AssemblyEngine).
// Sweeps the dirty-pair displacement tolerance against the bitwise
// tolerance = 0 reference and reports, per workload,
//
//   * end-to-end step-time speedup (whole stepper, not just Construct:
//     the paper's Table II attributes ~10-20% of a step to assembly,
//     which bounds what reuse can buy),
//   * maximum trajectory divergence from the reference (units of the
//     mean radius) — the accuracy price of reusing stale blocks,
//   * dirty-pair fraction and pattern rebuild count — why the speedup
//     is whatever it is.
//
// Two workloads bracket the regime: "equilibrium" uses the production
// rms step (0.005 a per step — configurations drift like sqrt(t), so
// almost every pair stays clean) and "drift" packs looser and takes
// 4x larger steps (0.02 a), the unfavourable case where pairs go
// dirty quickly and the pattern rebuilds often.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "sd/assembly_engine.hpp"

namespace {

using namespace mrhs;

struct SweepPoint {
  double tolerance = 0.0;  // fraction of the mean radius
  double seconds_per_step = 0.0;
  double max_divergence = 0.0;  // vs tol = 0, units of mean radius
  double dirty_fraction = 1.0;
  std::uint64_t pattern_rebuilds = 0;
};

struct WorkloadResult {
  std::vector<SweepPoint> points;  // points[0] is the tol = 0 reference
};

WorkloadResult run_workload(double rms_step_fraction, double packing_pad,
                            const std::vector<double>& tolerances,
                            std::size_t particles, std::size_t steps,
                            std::size_t rhs) {
  WorkloadResult result;
  std::vector<sd::Vec3> reference;  // unwrapped displacements at tol = 0
  for (double tol : tolerances) {
    core::SdConfig config;
    config.particles = particles;
    config.phi = 0.4;
    config.seed = 2024;
    config.rms_step_fraction = rms_step_fraction;
    config.packing_pad = packing_pad;
    config.assembly_tolerance = tol;
    core::SdSimulation sim(config);
    core::MrhsAlgorithm alg(sim, {.rhs = rhs});
    const auto stats = alg.run(steps);

    SweepPoint point;
    point.tolerance = tol;
    point.seconds_per_step = stats.avg_step_seconds();
    const sd::AssemblyEngine& engine = sim.engine();
    const double examined =
        static_cast<double>(engine.pairs_dirty_total()) +
        0.5 * static_cast<double>(engine.blocks_reused_total());
    point.dirty_fraction =
        examined > 0.0
            ? static_cast<double>(engine.pairs_dirty_total()) / examined
            : 1.0;
    point.pattern_rebuilds = engine.pattern_rebuilds();

    const std::size_t n = sim.system().size();
    if (reference.empty()) {
      reference.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        reference.push_back(sim.system().unwrapped_displacement(i));
      }
    } else {
      double max_div = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const sd::Vec3 d = sim.system().unwrapped_displacement(i);
        const sd::Vec3 e{d.x - reference[i].x, d.y - reference[i].y,
                         d.z - reference[i].z};
        max_div = std::max(max_div, e.norm());
      }
      point.max_divergence = max_div / sim.mean_radius();
    }
    result.points.push_back(point);
  }
  return result;
}

void report_workload(bench::BenchHarness& harness, const std::string& name,
                     const WorkloadResult& result) {
  const double ref_time = result.points.front().seconds_per_step;
  util::Table table({"tolerance (a)", "s/step", "speedup", "max div (a)",
                     "dirty frac", "rebuilds"});
  for (const SweepPoint& p : result.points) {
    const double speedup = ref_time / p.seconds_per_step;
    table.add_row({util::Table::fmt(p.tolerance, 2),
                   util::Table::fmt(p.seconds_per_step, 3),
                   util::Table::fmt_fixed(speedup, 3),
                   util::Table::fmt(p.max_divergence, 2),
                   util::Table::fmt_fixed(p.dirty_fraction, 3),
                   std::to_string(p.pattern_rebuilds)});
    const std::string suffix =
        ".tol=" + util::Table::fmt(p.tolerance, 2);
    harness.report().set_value(name + ".speedup" + suffix, speedup);
    harness.report().set_value(name + ".divergence" + suffix,
                               p.max_divergence);
    harness.report().set_value(name + ".dirty_fraction" + suffix,
                               p.dirty_fraction);
  }
  table.print(name + " workload (reference: tolerance 0, bitwise full "
              "assembly every call):");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 2000;
  int steps = 16;
  int rhs = 8;
  bench::BenchHarness harness("abl04_incremental_assembly");
  util::ArgParser args("abl04_incremental_assembly",
                       "Ablation: incremental assembly tolerance sweep");
  args.add("particles", particles, "particles in the suspension");
  args.add("steps", steps, "time steps per sweep point");
  args.add("rhs", rhs, "right-hand sides per MRHS chunk");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Ablation — incremental assembly: speedup vs trajectory divergence",
      "(design-choice ablation; motivated by the paper's sqrt(t) drift "
      "observation applied to the Construct phase)");

  const std::vector<double> tolerances = {0.0, 0.01, 0.05, 0.1};
  const auto n = static_cast<std::size_t>(particles);
  const auto s = static_cast<std::size_t>(steps);
  const auto m = static_cast<std::size_t>(rhs);

  // The equilibrium workload packs at the default pad, which also caps
  // the rms step; the drift workload packs looser (pad 0.06) so its
  // 4x larger target step is not clamped by the overlap guard.
  const auto equilibrium = run_workload(0.005, -1.0, tolerances, n, s, m);
  report_workload(harness, "equilibrium", equilibrium);
  const auto drift = run_workload(0.02, 0.06, tolerances, n, s, m);
  report_workload(harness, "drift", drift);

  bench::print_note(
      "tolerance is in units of the mean radius; divergence is bounded "
      "by construction (every pair refreshes once its drift exceeds the "
      "tolerance) and the pattern rebuild count shows when the Verlet "
      "skin, not block reuse, limits the win.");
  harness.finish("Ablation — incremental resistance assembly");
  return 0;
}
