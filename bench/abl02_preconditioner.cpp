// Ablation: block-Jacobi preconditioning of the SD solves. The paper
// runs plain CG; this quantifies what per-particle 3x3 diagonal
// inversion buys on the same systems (it composes with MRHS
// unchanged).
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "solver/cg.hpp"
#include "solver/operator.hpp"
#include "solver/preconditioner.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 2000;
  bench::BenchHarness harness("abl02_preconditioner");
  util::ArgParser args("abl02_preconditioner",
                       "Ablation: block-Jacobi vs plain CG on SD systems");
  args.add("particles", particles, "particles per system");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Ablation — block-Jacobi preconditioning of the resistance solves",
      "(design-choice ablation; the paper uses plain CG)");

  util::Table table({"phi", "CG iters", "PCG iters", "CG ms", "PCG ms",
                     "iter reduction"});
  for (double phi : {0.1, 0.3, 0.5}) {
    core::SdConfig config;
    config.particles = static_cast<std::size_t>(particles);
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    const auto r = sim.assemble().matrix;
    solver::BcrsOperator op(r, config.threads);
    const solver::BlockJacobiPreconditioner precond(r);

    std::vector<double> b(op.size());
    sim.noise(0, b);
    std::vector<double> x1(op.size(), 0.0), x2(op.size(), 0.0);

    util::WallTimer t1;
    const auto plain = solver::conjugate_gradient(op, b, x1);
    const double s1 = t1.seconds();
    util::WallTimer t2;
    const auto pcg =
        solver::preconditioned_conjugate_gradient(op, precond, b, x2);
    const double s2 = t2.seconds();

    table.add_row(
        {util::Table::fmt(phi, 2), std::to_string(plain.iterations),
         std::to_string(pcg.iterations), util::Table::fmt(s1 * 1e3, 3),
         util::Table::fmt(s2 * 1e3, 3),
         util::Table::fmt_pct(
             1.0 - static_cast<double>(pcg.iterations) /
                       static_cast<double>(plain.iterations),
             0)});
    const std::string suffix = util::Table::fmt(phi, 2);
    harness.report().set_value("cg_iters.phi=" + suffix,
                               static_cast<double>(plain.iterations));
    harness.report().set_value("pcg_iters.phi=" + suffix,
                               static_cast<double>(pcg.iterations));
    harness.ledger().add_phase("cg.phi=" + suffix, s1);
    harness.ledger().add_phase("pcg.phi=" + suffix, s2);
  }
  table.print("one resistance solve per occupancy (Brownian RHS):");
  bench::print_note(
      "block-Jacobi equalizes the per-particle drag scales "
      "(polydisperse radii) but cannot touch the pair lubrication "
      "stiffness, so the reduction is real yet bounded.");
  harness.finish("Ablation — block-Jacobi preconditioning");
  return 0;
}
