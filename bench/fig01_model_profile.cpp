// Paper Figure 1: number of vectors that can be multiplied in 2x the
// single-vector time, as a function of nnzb/nb (x) and B/F (y), from
// the performance model with k(m) = 0.
#include <vector>

#include "bench_common.hpp"
#include "perf/model.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  double ratio = 2.0;
  double k = 0.0;
  bench::BenchHarness harness("fig01_model_profile");
  util::ArgParser args("fig01_model_profile",
                       "Reproduce paper Fig. 1 (model profile)");
  args.add("ratio", ratio, "relative-time budget (paper uses 2x)");
  args.add("k", k, "extra X accesses k(m) (paper's figure assumes 0)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 1 — vectors multipliable in " + util::Table::fmt(ratio, 3) +
          "x single-vector time (model, k = " + util::Table::fmt(k, 3) + ")",
      "a profile rising from ~10 vectors (sparse rows, tiny B/F) toward "
      "50-60 (dense rows), saturating once the compute bound dominates");

  const std::vector<double> bpr_axis = {6,  12, 18, 24, 30, 36, 42,
                                        48, 54, 60, 66, 72, 78, 84};
  const std::vector<double> bf_axis = {0.02, 0.06, 0.1, 0.2,
                                       0.3,  0.4,  0.5, 0.6};

  std::vector<std::string> headers = {"B/F \\ nnzb/nb"};
  for (double bpr : bpr_axis) headers.push_back(util::Table::fmt(bpr, 3));
  util::Table table(headers);
  for (double bf : bf_axis) {
    std::vector<std::string> row = {util::Table::fmt(bf, 3)};
    for (double bpr : bpr_axis) {
      const auto model = perf::ratio_model(bpr, bf, k);
      row.push_back(std::to_string(model.vectors_within_ratio(ratio)));
    }
    table.add_row(std::move(row));
  }
  table.print("vectors at r(m) <= " + util::Table::fmt(ratio, 3) + ":");

  // The three configurations highlighted in the paper's text.
  util::Table spots({"config", "nnzb/nb", "B/F", "paper measured", "model"});
  struct Spot {
    const char* name;
    double bpr, bf;
    const char* paper;
  };
  for (const Spot& s : {Spot{"mat1 on WSM", 5.6, 0.51, "8"},
                        Spot{"mat2 on WSM", 24.9, 0.51, "12"},
                        Spot{"mat3 on SNB", 45.3, 0.37, "16"}}) {
    const auto model = perf::ratio_model(s.bpr, s.bf, k);
    spots.add_row({s.name, util::Table::fmt(s.bpr, 3),
                   util::Table::fmt(s.bf, 2), s.paper,
                   std::to_string(model.vectors_within_ratio(ratio))});
    harness.report().set_value(
        std::string("model_vectors.") + s.name,
        static_cast<double>(model.vectors_within_ratio(ratio)));
  }
  spots.print("\npaper text anchors (k = 0 model is an upper profile; the "
              "paper notes measured values are somewhat smaller):");
  harness.finish("Figure 1 — model profile of multipliable vectors");
  return 0;
}
