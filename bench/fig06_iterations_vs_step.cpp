// Paper Figure 6: CG iterations for convergence vs time step when
// initial guesses generated from the first time step's system are
// used; three system sizes at 50% occupancy. Iterations grow slowly.
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int steps = 24;
  double phi = 0.5;
  std::string sizes = "1000,3000,6000";
  bench::BenchHarness harness("fig06_iterations_vs_step");
  util::ArgParser args("fig06_iterations_vs_step", "Reproduce paper Fig. 6");
  args.add("steps", steps, "time steps to run (one MRHS chunk)");
  args.add("phi", phi, "volume occupancy (paper: 0.5)");
  args.add("sizes", sizes,
           "comma-separated particle counts (paper: 3k/30k/300k)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 6 — iterations for convergence vs time step, with guesses",
      "slow growth over steps; larger systems need no more iterations "
      "(50% occupancy, 3k/30k/300k particles)");

  std::vector<std::size_t> particle_counts;
  for (std::size_t pos = 0; pos < sizes.size();) {
    const auto comma = sizes.find(',', pos);
    particle_counts.push_back(std::stoul(sizes.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<std::vector<std::size_t>> iteration_curves;
  for (std::size_t n : particle_counts) {
    core::SdConfig config;
    config.particles = n;
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    core::MrhsAlgorithm mrhs(sim, {.rhs = static_cast<std::size_t>(steps)});
    const auto stats = mrhs.run(static_cast<std::size_t>(steps));
    harness.add_phases(stats, "n=" + std::to_string(n) + "/");
    std::vector<std::size_t> iters;
    double total = 0.0;
    for (const auto& rec : stats.steps) {
      iters.push_back(rec.iters_first_solve);
      total += static_cast<double>(rec.iters_first_solve);
    }
    harness.report().set_value(
        "mean_first_solve_iters.n=" + std::to_string(n),
        total / static_cast<double>(stats.steps.size()));
    iteration_curves.push_back(std::move(iters));
  }

  std::vector<std::string> headers = {"step"};
  for (std::size_t n : particle_counts) {
    headers.push_back(std::to_string(n) + " particles");
  }
  util::Table table(headers);
  for (int k = 1; k < steps; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& curve : iteration_curves) {
      row.push_back(std::to_string(curve[k]));
    }
    table.add_row(std::move(row));
  }
  table.print("first-solve iterations (step 0 is solved by the augmented "
              "system):");
  harness.finish("Figure 6 — iterations vs time step, with guesses");
  return 0;
}
