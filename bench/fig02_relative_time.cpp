// Paper Figure 2: relative time r(m) of GSPMV.
//  (a) predicted vs achieved for mat2,
//  (b) achieved r(m) for mat1, mat2, mat3.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/workloads.hpp"
#include "perf/machine.hpp"
#include "perf/measure.hpp"
#include "perf/model.hpp"
#include "sparse/gspmv.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 10000;
  int threads = 0;
  int max_m = 42;
  bench::BenchHarness harness("fig02_relative_time");
  util::ArgParser args("fig02_relative_time", "Reproduce paper Fig. 2");
  args.add("particles", particles, "particles per system");
  args.add("threads", threads, "GSPMV threads (0 = all)");
  args.add("max_m", max_m, "largest vector count (paper sweeps to 42)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 2 — GSPMV relative time r(m)",
      "(a) model tracks measurement for mat2; (b) r(2x) reached at "
      "m ~ 8 (mat1), ~12 (mat2), ~16 (mat3/SNB)");

  const auto machine = perf::measure_machine();
  harness.set_machine(machine);
  std::printf("machine: B = %.1f GB/s, F = %.1f Gflop/s, B/F = %.2f "
              "(paper WSM: 23/45/0.55, SNB: 33/90/0.37)\n\n",
              machine.bandwidth * 1e-9, machine.flops * 1e-9,
              machine.bytes_per_flop());

  const auto suite =
      core::build_matrix_suite(static_cast<std::size_t>(particles), 42);

  std::vector<std::size_t> ms;
  for (int m = 1; m <= max_m; m = m < 4 ? m + 1 : m + 2) {
    ms.push_back(static_cast<std::size_t>(m));
  }

  // (a) predicted vs achieved for mat2.
  {
    const auto& sm = suite[1];
    perf::GspmvModel model;
    model.block_rows = static_cast<double>(sm.matrix.block_rows());
    model.nonzero_blocks = static_cast<double>(sm.matrix.nnzb());
    model.bandwidth = machine.bandwidth;
    model.flops = machine.flops;

    const auto measured = perf::measure_relative_time(
        sm.matrix, ms, threads, /*min_seconds=*/0.2);

    // The acceptance-critical roofline samples: one GSPMV at m = 1 and
    // one at the measured per-vector optimum, with the engine's
    // minimum-traffic byte/flop model.
    const sparse::GspmvEngine engine(sm.matrix, threads);
    std::size_t opt_m = 1;
    double opt_seconds = 0.0, best_per_vector = 1e300;
    for (const auto& pt : measured) {
      const double per_vector = pt.seconds / static_cast<double>(pt.m);
      if (per_vector < best_per_vector) {
        best_per_vector = per_vector;
        opt_m = pt.m;
        opt_seconds = pt.seconds;
      }
      if (pt.m == 1) {
        harness.ledger().add_kernel_sample("gspmv@m=1",
                                           engine.min_bytes(1),
                                           engine.flops(1), pt.seconds);
      }
    }
    harness.ledger().add_kernel_sample("gspmv@m=opt",
                                       engine.min_bytes(opt_m),
                                       engine.flops(opt_m), opt_seconds);
    harness.report().set_value("gspmv.opt_m",
                               static_cast<double>(opt_m));

    util::Table table({"m", "r achieved", "r predicted", "bw bound",
                       "compute bound", "inferred k(m)"});
    for (const auto& pt : measured) {
      const double base = model.time_bandwidth_bound(1);
      const double k = perf::infer_k(model, pt.m, pt.seconds);
      table.add_row({std::to_string(pt.m),
                     util::Table::fmt_fixed(pt.relative, 2),
                     util::Table::fmt_fixed(model.relative_time(pt.m), 2),
                     util::Table::fmt_fixed(
                         model.time_bandwidth_bound(pt.m) / base, 2),
                     util::Table::fmt_fixed(
                         model.time_compute_bound(pt.m) / base, 2),
                     std::isnan(k) ? "compute-bound"
                                   : util::Table::fmt_fixed(k, 1)});
    }
    table.print("(a) mat2: predicted vs achieved relative time "
                "(paper: k(m) ~ 3 for SD matrices, weakly m-dependent)");
  }

  // (b) achieved r(m) for all three matrices.
  {
    util::Table table({"m", "mat1", "mat2", "mat3"});
    std::vector<std::vector<perf::RelativeTimePoint>> curves;
    for (const auto& sm : suite) {
      curves.push_back(perf::measure_relative_time(sm.matrix, ms, threads,
                                                  /*min_seconds=*/0.2));
    }
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row({std::to_string(ms[i]),
                     util::Table::fmt_fixed(curves[0][i].relative, 2),
                     util::Table::fmt_fixed(curves[1][i].relative, 2),
                     util::Table::fmt_fixed(curves[2][i].relative, 2)});
    }
    table.print("\n(b) achieved r(m) for the three matrices:");

    for (std::size_t c = 0; c < suite.size(); ++c) {
      std::size_t vectors_at_2x = 1;
      for (const auto& pt : curves[c]) {
        if (pt.relative <= 2.0) vectors_at_2x = pt.m;
      }
      std::printf("%s: %zu vectors within 2x (paper: %s)\n",
                  suite[c].spec.name.c_str(), vectors_at_2x,
                  c == 0 ? "8" : (c == 1 ? "12" : "16 on SNB"));
      harness.report().set_value(
          "vectors_at_2x." + suite[c].spec.name,
          static_cast<double>(vectors_at_2x));
    }
  }
  harness.finish("Figure 2 — GSPMV relative time r(m)");
  return 0;
}
