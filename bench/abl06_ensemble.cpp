// Ablation: ensemble serving vs K independent runs.
//
// Krasnopolsky's multiple-ensembles observation (PAPERS.md,
// arXiv:1711.10622) extends the MRHS amortization across independent
// simulations: K scenarios of the same system pack their noise
// columns into one MultiVector, so the block-Chebyshev phase runs one
// GSPMV sweep of width K*m instead of K sweeps of width m. This
// ablation measures what that sharing buys end to end:
//
//   * ensemble:    one EnsembleRunner serving K members per batch;
//   * independent: K EnsembleRunners of one member each, run
//     back-to-back (the "K separate processes" cost, same kernels,
//     no sharing).
//
// Both serve identical scenarios (same seeds, same steps), so the
// aggregate work is identical and the trajectories are bitwise equal
// by the membership-invariance contract; only the batching differs.
// The per-member phases (assembly, Lanczos, guess solves, per-step
// CG) do not shrink with K, so the end-to-end speedup is bounded by
// the Cheb-vectors fraction — the interesting output is where the
// shared sweep's advantage saturates (the paper's m_s crossover, now
// in units of ensemble width).
#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "ensemble/ensemble_runner.hpp"
#include "util/timer.hpp"

namespace {

using namespace mrhs;

core::SdConfig make_config(std::size_t particles) {
  core::SdConfig config;
  config.particles = particles;
  config.phi = 0.4;
  config.seed = 2024;
  return config;
}

struct ServeCost {
  double seconds = 0.0;
  double cheb_seconds = 0.0;
};

/// Serve `k` scenarios through one shared runner or k solo runners
/// ("K independent processes", same kernels, no sharing). Only run()
/// is timed: every process pays the same one-time setup (packing,
/// reference assembly, Lanczos), and including it would credit the
/// ensemble for amortizing setup rather than for the shared block
/// sweep this ablation is about.
ServeCost serve(const core::SdConfig& config,
                const ensemble::EnsembleOptions& options, std::size_t k,
                std::size_t steps, bool shared) {
  ServeCost cost;
  if (shared) {
    ensemble::EnsembleRunner runner(config, options);
    for (std::size_t i = 0; i < k; ++i) {
      ensemble::Scenario scenario;
      scenario.noise_seed = 1000 + i;
      scenario.steps = steps;
      static_cast<void>(runner.add_member(scenario));
    }
    util::WallTimer timer;
    const auto reports = runner.run();
    cost.seconds = timer.seconds();
    cost.cheb_seconds =
        runner.shared_stats().timers.seconds(core::phase::kChebVectors);
    if (reports.size() != k) std::abort();
  } else {
    std::vector<std::unique_ptr<ensemble::EnsembleRunner>> runners;
    for (std::size_t i = 0; i < k; ++i) {
      runners.push_back(
          std::make_unique<ensemble::EnsembleRunner>(config, options));
      ensemble::Scenario scenario;
      scenario.noise_seed = 1000 + i;
      scenario.steps = steps;
      static_cast<void>(runners.back()->add_member(scenario));
    }
    util::WallTimer timer;
    for (auto& runner : runners) {
      const auto reports = runner->run();
      if (reports.size() != 1) std::abort();
    }
    cost.seconds = timer.seconds();
    for (const auto& runner : runners) {
      cost.cheb_seconds +=
          runner->shared_stats().timers.seconds(core::phase::kChebVectors);
    }
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 600;
  int steps = 8;
  int rhs = 4;
  int kmax = 8;
  bench::BenchHarness harness("abl06_ensemble");
  util::ArgParser args("abl06_ensemble",
                       "Ablation: shared ensemble serving vs K independent "
                       "runs");
  args.add("particles", particles, "particles in the shared base system");
  args.add("steps", steps, "trajectory steps per scenario");
  args.add("rhs", rhs, "guess columns per member per round (member m)");
  args.add("kmax", kmax, "largest ensemble width (doubling from 1)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Ablation — ensemble serving vs independent runs",
      "packing K scenarios' RHS into one block amortizes matrix traffic "
      "across simulations (multiple-ensembles MRHS, arXiv:1711.10622)");

  const core::SdConfig config = make_config(
      static_cast<std::size_t>(particles));
  ensemble::EnsembleOptions options;
  options.rhs = static_cast<std::size_t>(rhs);
  const auto s = static_cast<std::size_t>(steps);

  util::Table table({"K", "ensemble s", "indep s", "agg steps/s", "speedup",
                     "cheb share"});
  double crossover_k = 0.0;
  for (std::size_t k = 1; k <= static_cast<std::size_t>(kmax); k *= 2) {
    const ServeCost ens = serve(config, options, k, s, /*shared=*/true);
    const ServeCost ind = serve(config, options, k, s, /*shared=*/false);
    const double total_steps = static_cast<double>(k * s);
    const double speedup = ind.seconds / ens.seconds;
    if (speedup > 1.0 && crossover_k == 0.0) {
      crossover_k = static_cast<double>(k);
    }
    table.add_row({std::to_string(k), util::Table::fmt(ens.seconds, 3),
                   util::Table::fmt(ind.seconds, 3),
                   util::Table::fmt(total_steps / ens.seconds, 3),
                   util::Table::fmt_fixed(speedup, 3),
                   util::Table::fmt_fixed(ens.cheb_seconds / ens.seconds, 3)});
    const std::string suffix = ".K=" + std::to_string(k);
    harness.report().set_value("ensemble.seconds" + suffix, ens.seconds);
    harness.report().set_value("independent.seconds" + suffix, ind.seconds);
    harness.report().set_value("ensemble.steps_per_s" + suffix,
                               total_steps / ens.seconds);
    harness.report().set_value("independent.steps_per_s" + suffix,
                               total_steps / ind.seconds);
    harness.report().set_value("speedup" + suffix, speedup);
  }
  table.print("aggregate serving throughput:");
  harness.report().set_value("crossover_k", crossover_k);

  bench::print_note(
      "speedup > 1 means the shared block sweep beats K separate "
      "processes; the gain saturates once the packed width K*m passes "
      "the GSPMV bandwidth->compute crossover, and the residual gap is "
      "the per-member work (assembly, Lanczos, per-step CG) that "
      "sharing cannot amortize.");
  harness.finish("Ablation — ensemble serving vs independent runs");
  return 0;
}
