// Google-benchmark microbenchmarks for the GSPMV kernels:
// reference vs SIMD, row-major vs column-major vector layout (the
// paper's layout choice), and the m sweep on an SD-like matrix.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/csr.hpp"
#include "sparse/gspmv.hpp"
#include "sparse/multivector.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrhs;

const sparse::BcrsMatrix& test_matrix() {
  // ~25 blocks per row like mat2; ~8k block rows so the matrix
  // (~15 MB) streams from memory.
  static const auto matrix = sparse::make_random_bcrs(8000, 25.0, 42);
  return matrix;
}

void bm_gspmv_simd(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto m = static_cast<std::size_t>(state.range(0));
  sparse::MultiVector x(a.cols(), m), y(a.rows(), m);
  util::StreamRng rng(1);
  x.fill_normal(rng);
  const sparse::GspmvEngine engine(a, 1);
  for (auto _ : state) {
    engine.apply(x, y, sparse::GspmvKernel::kSimd);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["flops"] = benchmark::Counter(
      engine.flops(m), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(bm_gspmv_simd)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void bm_gspmv_reference(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto m = static_cast<std::size_t>(state.range(0));
  sparse::MultiVector x(a.cols(), m), y(a.rows(), m);
  util::StreamRng rng(2);
  x.fill_normal(rng);
  const sparse::GspmvEngine engine(a, 1);
  for (auto _ : state) {
    engine.apply(x, y, sparse::GspmvKernel::kReference);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(bm_gspmv_reference)->Arg(1)->Arg(4)->Arg(16);

void bm_gspmv_colmajor(benchmark::State& state) {
  // Layout ablation: the same multiply with column-major vectors.
  const auto& a = test_matrix();
  const auto m = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<double> x(a.cols() * m), y(a.rows() * m);
  util::StreamRng rng(3);
  rng.fill_normal({x.data(), x.size()});
  for (auto _ : state) {
    sparse::gspmv_colmajor(a, x.data(), y.data(), m);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(bm_gspmv_colmajor)->Arg(1)->Arg(4)->Arg(16);

void bm_gspmv_simd256(benchmark::State& state) {
  // Kernel-width ablation: force the AVX2 (4-lane) variant; compare
  // with bm_gspmv_simd, which picks AVX-512 when compiled in.
  const auto& a = test_matrix();
  const auto m = static_cast<std::size_t>(state.range(0));
  sparse::MultiVector x(a.cols(), m), y(a.rows(), m);
  util::StreamRng rng(6);
  x.fill_normal(rng);
  const sparse::GspmvEngine engine(a, 1);
  for (auto _ : state) {
    engine.apply(x, y, sparse::GspmvKernel::kSimd256);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(bm_gspmv_simd256)->Arg(8)->Arg(16)->Arg(32);

void bm_spmv_csr_scalar(benchmark::State& state) {
  // Format ablation: the same matrix in scalar CSR (no 3x3 blocks).
  // BCRS halves the index traffic and feeds the block microkernels —
  // the "natural 3x3 block structure" the paper exploits.
  static const auto csr = test_matrix().to_csr();
  util::AlignedVector<double> x(csr.cols()), y(csr.rows());
  util::StreamRng rng(7);
  rng.fill_normal({x.data(), x.size()});
  for (auto _ : state) {
    csr.multiply(std::span<const double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(bm_spmv_csr_scalar);

void bm_spmv(benchmark::State& state) {
  const auto& a = test_matrix();
  util::AlignedVector<double> x(a.cols()), y(a.rows());
  util::StreamRng rng(4);
  rng.fill_normal({x.data(), x.size()});
  const sparse::GspmvEngine engine(a, 1);
  for (auto _ : state) {
    engine.apply(std::span<const double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["bytes"] = benchmark::Counter(
      engine.min_bytes(1), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(bm_spmv);

}  // namespace

// Custom main so the run also emits a BenchReport sidecar (the harness
// stays out of google-benchmark's argv; override the sidecar path with
// MRHS_REPORT_OUT).
int main(int argc, char** argv) {
  mrhs::bench::BenchHarness harness("micro_gspmv");
  harness.begin();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harness.finish("Microbenchmarks — GSPMV kernels");
  return 0;
}
