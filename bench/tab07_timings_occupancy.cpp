// Paper Table VII: per-step timing breakdown, MRHS vs original
// algorithm, for varying volume occupancy at fixed problem size.
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 3000;
  int rhs = 16;
  int steps = 16;
  bench::BenchHarness harness("tab07_timings_occupancy");
  util::ArgParser args("tab07_timings_occupancy",
                       "Reproduce paper Table VII");
  args.add("particles", particles, "particles (paper: 300k; scaled)");
  args.add("rhs", rhs, "right-hand sides per chunk (paper: 16)");
  args.add("steps", steps, "steps per measurement");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table VII — per-step timing breakdown vs occupancy (" +
          std::to_string(particles) + " particles, m = " +
          std::to_string(rhs) + ")",
      "MRHS averages 0.66/1.07/5.46 s vs original 0.70/1.32/7.70 s at "
      "phi = 0.1/0.3/0.5 — speedup grows with occupancy");

  const std::vector<double> phis = {0.1, 0.3, 0.5};
  std::vector<std::vector<std::string>> columns;
  std::vector<double> mrhs_avg, orig_avg;

  for (double phi : phis) {
    core::SdConfig config;
    config.particles = static_cast<std::size_t>(particles);
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    core::MrhsAlgorithm mrhs(sim, {.rhs = static_cast<std::size_t>(rhs)});
    const auto stats = mrhs.run(static_cast<std::size_t>(steps));
    harness.add_phases(stats, "mrhs.phi=" + util::Table::fmt(phi, 2) + "/");
    columns.push_back(bench::breakdown_column(stats, /*is_mrhs=*/true));
    mrhs_avg.push_back(stats.avg_step_seconds());
  }
  for (double phi : phis) {
    core::SdConfig config;
    config.particles = static_cast<std::size_t>(particles);
    config.phi = phi;
    config.seed = 42;
    core::SdSimulation sim(config);
    core::OriginalAlgorithm orig(sim);
    const auto stats = orig.run(static_cast<std::size_t>(steps));
    harness.add_phases(stats, "orig.phi=" + util::Table::fmt(phi, 2) + "/");
    columns.push_back(bench::breakdown_column(stats, /*is_mrhs=*/false));
    orig_avg.push_back(stats.avg_step_seconds());
  }

  util::Table table({"Phase", "MRHS 0.1", "MRHS 0.3", "MRHS 0.5",
                     "Orig 0.1", "Orig 0.3", "Orig 0.5"});
  const auto& rows = bench::breakdown_rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> row = {rows[r]};
    for (const auto& col : columns) row.push_back(col[r]);
    table.add_row(std::move(row));
  }
  table.print("seconds per time step:");

  for (std::size_t i = 0; i < phis.size(); ++i) {
    std::printf("phi = %.1f: MRHS %.3g s vs original %.3g s -> %.0f%% "
                "speedup\n",
                phis[i], mrhs_avg[i], orig_avg[i],
                100.0 * (1.0 - mrhs_avg[i] / orig_avg[i]));
    const std::string suffix = util::Table::fmt(phis[i], 2);
    harness.report().set_value("mrhs_step_seconds.phi=" + suffix,
                               mrhs_avg[i]);
    harness.report().set_value("orig_step_seconds.phi=" + suffix,
                               orig_avg[i]);
    harness.report().set_value("speedup.phi=" + suffix,
                               orig_avg[i] / mrhs_avg[i]);
  }
  harness.finish("Table VII — per-step timing breakdown vs occupancy");
  return 0;
}
