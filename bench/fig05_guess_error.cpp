// Paper Figure 5: relative error of the MRHS initial guesses vs time
// step. The paper observes square-root-of-time growth mirroring
// Brownian displacement, with proportionality constant ~0.006 for a
// 3,000-particle, 50%-occupancy system.
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 3000;
  double phi = 0.5;
  int rhs = 24;
  int seed = 42;
  bench::BenchHarness harness("fig05_guess_error");
  util::ArgParser args("fig05_guess_error", "Reproduce paper Fig. 5");
  args.add("particles", particles, "particles (paper: 3000)");
  args.add("phi", phi, "volume occupancy (paper: 0.5)");
  args.add("rhs", rhs, "chunk length m = steps to track");
  args.add("seed", seed, "seed");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 5 — relative error of initial guesses vs time step",
      "||u_k - u'_k|| / ||u_k|| grows like sqrt(step), constant ~0.006 "
      "(3000 particles, 50% occupancy)");

  core::SdConfig config;
  config.particles = static_cast<std::size_t>(particles);
  config.phi = phi;
  config.seed = static_cast<std::uint64_t>(seed);
  core::SdSimulation sim(config);
  core::MrhsAlgorithm mrhs(sim, {.rhs = static_cast<std::size_t>(rhs)});
  const auto stats = mrhs.run(static_cast<std::size_t>(rhs));

  util::Table table({"step", "rel error", "rel error / sqrt(step)"});
  std::vector<double> ks, errs;
  for (std::size_t k = 1; k < stats.steps.size(); ++k) {
    const double err = stats.steps[k].guess_rel_error;
    ks.push_back(static_cast<double>(k));
    errs.push_back(err);
    table.add_row({std::to_string(k), util::Table::fmt(err, 3),
                   util::Table::fmt(err / std::sqrt(static_cast<double>(k)),
                                    3)});
  }
  table.print();

  const auto fit = util::power_law_fit(ks, errs);
  std::printf("power-law fit: error ~ %.4g * step^%.2f  (r2 = %.3f)\n",
              std::exp(fit.intercept), fit.slope, fit.r2);
  std::printf("paper: exponent 0.5, constant ~0.006\n");
  harness.add_phases(stats);
  harness.report().set_value("fit_exponent", fit.slope);
  harness.report().set_value("fit_constant", std::exp(fit.intercept));
  harness.report().set_value("fit_r2", fit.r2);
  harness.finish("Figure 5 — relative error of initial guesses vs step");
  return 0;
}
