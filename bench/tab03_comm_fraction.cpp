// Paper Table III: GSPMV communication time fractions for mat1 at 32
// and 64 nodes, m in {1, 8, 32}. Also prints the partitioner ablation
// (naive block-row vs coordinate grid vs RCB) the paper summarizes as
// "comparable to METIS".
#include "bench_common.hpp"
#include "cluster/comm_model.hpp"
#include "cluster/partitioner.hpp"
#include "core/workloads.hpp"
#include "sd/assembly_engine.hpp"
#include "sd/packing.hpp"
#include "sd/radii.hpp"
#include "sd/resistance.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 20000;
  int paper_particles = 300000;
  bench::BenchHarness harness("tab03_comm_fraction");
  util::ArgParser args("tab03_comm_fraction", "Reproduce paper Table III");
  args.add("particles", particles, "particles per system");
  args.add("paper_particles", paper_particles,
           "system size the timing model extrapolates to");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table III — GSPMV communication time fractions, mat1",
      "32 nodes: 88% / 76% / 52% and 64 nodes: 97% / 90% / 67% for "
      "m = 1 / 8 / 32");

  auto radii = sd::sample_radii(sd::ecoli_cytoplasm_distribution(),
                                static_cast<std::size_t>(particles), 42);
  sd::PackingParams packing;
  packing.seed = 42;
  const auto system = sd::pack_particles(std::move(radii), 0.5, packing);
  const auto spec =
      core::paper_matrix_suite(static_cast<std::size_t>(particles), 42)[0];
  sd::ResistanceParams params;
  params.lubrication.max_gap_scaled = spec.cutoff;
  const auto matrix = sd::AssemblyEngine(params).assemble_full(system).matrix;

  util::Table table({"nodes", "m=1", "m=8", "m=32", "paper (m=1/8/32)"});
  const char* paper[] = {"88% / 76% / 52%", "97% / 90% / 67%"};
  int row = 0;
  cluster::ClusterParams cp;
  cp.volume_scale = static_cast<double>(paper_particles) /
                    static_cast<double>(particles);
  for (std::size_t p : {32u, 64u}) {
    const auto part = cluster::partition_coordinate_grid(system, matrix, p);
    const cluster::CommPlan plan(matrix, part);
    const cluster::ClusterTimeModel model(plan, matrix.block_rows(), cp);
    table.add_row({std::to_string(p),
                   util::Table::fmt_pct(model.comm_fraction(1), 0),
                   util::Table::fmt_pct(model.comm_fraction(8), 0),
                   util::Table::fmt_pct(model.comm_fraction(32), 0),
                   paper[row++]});
    for (std::size_t m : {1u, 8u, 32u}) {
      harness.report().set_value("comm_fraction.nodes=" + std::to_string(p) +
                                     ".m=" + std::to_string(m),
                                 model.comm_fraction(m));
    }
  }
  table.print("communication fraction of the slowest node (mat1, nnzb/nb = " +
              util::Table::fmt_fixed(matrix.blocks_per_row(), 1) + "):");

  // Partitioner ablation: ghost volume and load balance per scheme.
  util::Table ablation({"partitioner", "nodes", "ghost block rows",
                        "load imbalance"});
  for (std::size_t p : {16u, 64u}) {
    struct Scheme {
      const char* name;
      cluster::Partition part;
    };
    Scheme schemes[] = {
        {"round-robin (no locality)",
         cluster::partition_round_robin(matrix, p)},
        {"block-row (Morton index order)",
         cluster::partition_block_rows(matrix, p)},
        {"coordinate grid (paper)",
         cluster::partition_coordinate_grid(system, matrix, p)},
        {"RCB (METIS stand-in)",
         cluster::partition_rcb(system, matrix, p)},
    };
    for (const auto& s : schemes) {
      const cluster::CommPlan plan(matrix, s.part);
      ablation.add_row({s.name, std::to_string(p),
                        std::to_string(plan.total_ghost_rows()),
                        util::Table::fmt_fixed(
                            cluster::load_imbalance(matrix, s.part), 2)});
    }
  }
  ablation.print("\npartitioner ablation (coordinate grid should be close "
                 "to RCB, far below naive):");
  harness.finish("Table III — GSPMV communication time fractions");
  return 0;
}
