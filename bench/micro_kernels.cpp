// Google-benchmark microbenchmarks for the machine-characterization
// kernels: STREAM triad (B) and the cache-resident basic kernel (F),
// the two inputs of the paper's performance model.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "perf/machine.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/gspmv.hpp"
#include "sparse/multivector.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrhs;

void bm_stream_triad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 3.0 * c[i];
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.counters["bytes"] = benchmark::Counter(
      4.0 * static_cast<double>(n) * sizeof(double),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(bm_stream_triad)->Arg(1 << 20)->Arg(8 << 20);

void bm_basic_kernel(benchmark::State& state) {
  // The paper's F benchmark: repeatedly multiply the same small
  // (cache-resident) block structure.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto tile = sparse::make_random_bcrs(64, 25.0, 7, false);
  sparse::MultiVector x(tile.cols(), m), y(tile.rows(), m);
  util::StreamRng rng(5);
  x.fill_normal(rng);
  const sparse::GspmvEngine engine(tile, 1);
  for (auto _ : state) {
    engine.apply(x, y, sparse::GspmvKernel::kSimd);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["flops"] = benchmark::Counter(
      engine.flops(m), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(bm_basic_kernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64);

void bm_measured_machine(benchmark::State& state) {
  // One-shot characterization, reported as counters so the numbers
  // land in the benchmark log.
  perf::StreamOptions stream;
  stream.elements = 4u << 20;
  stream.repetitions = 2;
  perf::KernelFlopsOptions kern;
  kern.min_seconds = 0.02;
  double bandwidth = 0.0, flops = 0.0;
  for (auto _ : state) {
    bandwidth = perf::measure_stream_bandwidth(stream);
    flops = perf::measure_kernel_flops_average(kern);
    benchmark::DoNotOptimize(bandwidth);
    benchmark::DoNotOptimize(flops);
  }
  state.counters["B_GBps"] = bandwidth * 1e-9;
  state.counters["F_Gflops"] = flops * 1e-9;
  state.counters["B_over_F"] = bandwidth / flops;
}
BENCHMARK(bm_measured_machine)->Iterations(1);

}  // namespace

// Custom main so the run also emits a BenchReport sidecar (the harness
// stays out of google-benchmark's argv; override the sidecar path with
// MRHS_REPORT_OUT).
int main(int argc, char** argv) {
  mrhs::bench::BenchHarness harness("micro_kernels");
  harness.begin();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harness.finish("Microbenchmarks — machine probes and solver kernels");
  return 0;
}
