// Ablation: the online m-autotuner (perf::MTuner) against an offline
// exhaustive sweep of fixed chunk widths.
//
// The paper's headline result is that the best number of right-hand
// sides sits at the bandwidth→compute crossover m_s of the GSPMV
// model (eqs. 9-12, m_optimal ≈ m_s). The offline way to find it is
// to run the full stepper once per candidate m and keep the fastest —
// exact but unusable in production. The tuner instead seeds m from the
// probed machine B/F and refines it online from achieved-bandwidth
// counter deltas at chunk boundaries.
//
// This ablation runs both and reports the gap: the tuned m must land
// within one grid step of the offline winner, at a per-step cost
// within noise of it, having spent zero extra sweep runs.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "perf/mtuner.hpp"

namespace {

using namespace mrhs;

struct SweepPoint {
  std::size_t m = 0;
  double seconds_per_step = 0.0;
};

core::SdConfig make_config(std::size_t particles) {
  core::SdConfig config;
  config.particles = particles;
  config.phi = 0.4;
  config.seed = 2024;
  config.assembly_tolerance = 0.05;
  return config;
}

double run_fixed(std::size_t particles, std::size_t steps, std::size_t m) {
  core::SdSimulation sim(make_config(particles));
  core::MrhsAlgorithm alg(sim, {.rhs = m});
  return alg.run(steps).avg_step_seconds();
}

std::size_t grid_index(std::size_t m) {
  for (std::size_t i = 0; i < perf::kMGridSize; ++i) {
    if (perf::kMGrid[i] == m) return i;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 1000;
  int steps = 32;
  int max_m = 16;
  bench::BenchHarness harness("abl05_autotune_m");
  util::ArgParser args("abl05_autotune_m",
                       "Ablation: online m-autotuner vs offline fixed-m sweep");
  args.add("particles", particles, "particles in the suspension");
  args.add("steps", steps, "time steps per run");
  args.add("max_m", max_m, "largest chunk width in the sweep grid");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Ablation — autotuned m vs offline-best fixed m",
      "m_optimal ~= m_s, the model crossover (eqs. 9-12); the tuner must "
      "find it online without the sweep");

  const auto n = static_cast<std::size_t>(particles);
  const auto s = static_cast<std::size_t>(steps);
  const auto cap = static_cast<std::size_t>(std::max(max_m, 1));

  // Offline: one full run per grid width (this sweep is the cost the
  // tuner exists to avoid).
  std::vector<SweepPoint> sweep;
  for (std::size_t i = 0; i < perf::kMGridSize && perf::kMGrid[i] <= cap;
       ++i) {
    SweepPoint point;
    point.m = perf::kMGrid[i];
    point.seconds_per_step = run_fixed(n, s, point.m);
    sweep.push_back(point);
  }
  const auto best = std::min_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.seconds_per_step < b.seconds_per_step;
      });

  // Online: one run, tuner enabled. The first chunk uses the seed rhs
  // (grid floor) and the tuner takes over from the second boundary.
  // Warm the quick-probe cache first so the one-off ~100 ms B/F probe
  // is not charged to the tuned run's step time.
  harness.set_machine(perf::measure_machine_quick());
  double tuned_seconds = 0.0;
  std::size_t tuned_m = 0;
  std::size_t retunes = 0;
  {
    core::SdSimulation sim(make_config(n));
    core::MrhsAlgorithm alg(sim,
                            {.rhs = 4, .autotune = true, .autotune_max_m = cap});
    tuned_seconds = alg.run(s).avg_step_seconds();
    if (alg.tuner().has_value()) {
      tuned_m = alg.tuner()->current_m();
      retunes = alg.tuner()->retunes();
    }
  }

  util::Table table({"m", "s/step", "vs best"});
  for (const SweepPoint& p : sweep) {
    table.add_row({std::to_string(p.m),
                   util::Table::fmt(p.seconds_per_step, 3),
                   util::Table::fmt_fixed(
                       p.seconds_per_step / best->seconds_per_step, 3)});
    harness.report().set_value("sweep.s_per_step.m=" + std::to_string(p.m),
                               p.seconds_per_step);
  }
  table.print("offline fixed-m sweep:");

  const std::size_t step_gap =
      grid_index(tuned_m) > grid_index(best->m)
          ? grid_index(tuned_m) - grid_index(best->m)
          : grid_index(best->m) - grid_index(tuned_m);
  std::printf("\noffline best: m = %zu (%.4g s/step, %zu sweep runs)\n",
              best->m, best->seconds_per_step, sweep.size());
  std::printf("autotuned:    m = %zu (%.4g s/step, %zu retunes, 0 sweep "
              "runs), %zu grid step(s) from the offline best\n",
              tuned_m, tuned_seconds, retunes, step_gap);

  harness.report().set_value("best_fixed_m", static_cast<double>(best->m));
  harness.report().set_value("best_fixed_s_per_step", best->seconds_per_step);
  harness.report().set_value("tuned_m", static_cast<double>(tuned_m));
  harness.report().set_value("tuned_s_per_step", tuned_seconds);
  harness.report().set_value("tuned_grid_gap", static_cast<double>(step_gap));
  harness.report().set_value("retunes", static_cast<double>(retunes));

  bench::print_note(
      "the tuner seeds from the probed B/F crossover and moves at most "
      "one grid step per chunk boundary; a gap of 0-1 steps means the "
      "model (plus online refinement) replaced the whole offline sweep.");
  harness.finish("Ablation — online m-autotuner");
  return 0;
}
