// Ablation: Chebyshev order for the Brownian matrix square root. The
// paper fixes C_max = 30 ("for computing the Brownian forces to a
// given accuracy"); this sweep shows the accuracy/cost trade-off that
// choice sits on.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/sd_simulation.hpp"
#include "dense/matrix.hpp"
#include "solver/chebyshev.hpp"
#include "solver/lanczos.hpp"
#include "solver/operator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 300;
  double phi = 0.5;
  bench::BenchHarness harness("abl03_chebyshev_order");
  util::ArgParser args("abl03_chebyshev_order",
                       "Ablation: Chebyshev order vs sqrt accuracy");
  args.add("particles", particles,
           "particles (small: dense reference is O(n^3))");
  args.add("phi", phi, "volume occupancy");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Ablation — Chebyshev order for S(R) ~ sqrt(R)",
      "(the paper fixes C_max = 30; this shows why)");

  core::SdConfig config;
  config.particles = static_cast<std::size_t>(particles);
  config.phi = phi;
  config.seed = 42;
  core::SdSimulation sim(config);
  const auto r = sim.assemble().matrix;
  solver::BcrsOperator op(r, config.threads);
  const auto bounds = solver::lanczos_bounds(op);
  std::printf("spectral interval: [%.3g, %.3g], condition %.1f\n\n",
              bounds.lambda_min, bounds.lambda_max,
              bounds.lambda_max / bounds.lambda_min);

  // Dense reference sqrt(R) z.
  std::vector<double> z(op.size()), y(op.size()), y_ref(op.size());
  sim.noise(0, z);
  dense::sqrt_apply_reference(r.to_dense(), z, y_ref);
  const double ref_norm = util::norm2(y_ref);

  util::Table table({"order", "interval max err", "||S(R)z - sqrt(R)z||/||.||",
                     "SPMVs", "ms"});
  for (std::size_t order : {5u, 10u, 20u, 30u, 40u, 60u}) {
    const solver::ChebyshevSqrt cheb(bounds, order);
    const double seconds =
        util::time_per_call([&] { cheb.apply(op, z, y); }, 0.02);
    table.add_row({std::to_string(order),
                   util::Table::fmt(cheb.max_interval_error() /
                                        std::sqrt(bounds.lambda_max),
                                    3),
                   util::Table::fmt(util::diff_norm2(y, y_ref) / ref_norm, 3),
                   std::to_string(order),
                   util::Table::fmt(seconds * 1e3, 3)});
    harness.report().set_value("rel_err.order=" + std::to_string(order),
                               util::diff_norm2(y, y_ref) / ref_norm);
    harness.report().set_value("ms.order=" + std::to_string(order),
                               seconds * 1e3);
  }
  table.print();
  bench::print_note(
      "error decays geometrically with order while cost is linear; at "
      "SD-like conditioning C_max = 30 puts the sqrt error around "
      "1e-4-1e-3 relative — far below the sampling noise of the "
      "Brownian forcing it feeds, which is the accuracy target that "
      "matters.");
  harness.finish("Ablation — Chebyshev order for S(R) ~ sqrt(R)");
  return 0;
}
