// Paper Figure 7: predicted vs achieved average simulation time per
// step as a function of the number of right-hand sides m. The achieved
// time first falls, bottoms out near m_optimal, and rises again; the
// prediction is the max of the bandwidth- and compute-bound estimates
// of equations (11) and (12).
#include <vector>

#include "bench_common.hpp"
#include "core/mrhs_model.hpp"
#include "core/sd_simulation.hpp"
#include "core/stepper.hpp"
#include "perf/machine.hpp"
#include "perf/measure.hpp"
#include "sparse/gspmv.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int particles = 3000;
  double phi = 0.5;
  int steps_per_m = 0;  // 0 -> one chunk of m steps per point
  std::string m_list = "1,2,4,6,8,10,12,16,20,24,32";
  bench::BenchHarness harness("fig07_tmrhs_vs_m");
  util::ArgParser args("fig07_tmrhs_vs_m", "Reproduce paper Fig. 7");
  args.add("particles", particles, "particles (paper: 300k; scaled)");
  args.add("phi", phi, "volume occupancy (paper: 0.5)");
  args.add("m_list", m_list, "comma-separated m values");
  args.add("steps", steps_per_m, "steps per point (0 = one chunk of m)");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Figure 7 — predicted and achieved average step time vs m",
      "achieved time decreases until m ~ m_optimal (10 for the 300k/50% "
      "system) and then increases, tracking the model prediction");

  std::vector<std::size_t> ms;
  for (std::size_t pos = 0; pos < m_list.size();) {
    const auto comma = m_list.find(',', pos);
    ms.push_back(std::stoul(m_list.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  core::SdConfig config;
  config.particles = static_cast<std::size_t>(particles);
  config.phi = phi;
  config.seed = 42;

  // Calibrate the cost model: machine B and F, matrix shape, and the
  // iteration counts N / N1 / N2 measured from short reference runs.
  const auto machine = perf::measure_machine();
  harness.set_machine(machine);
  core::MrhsCostModel model;
  {
    core::SdSimulation sim(config);
    const auto r = sim.assemble().matrix;
    model.gspmv.block_rows = static_cast<double>(r.block_rows());
    model.gspmv.nonzero_blocks = static_cast<double>(r.nnzb());
    model.gspmv.bandwidth = machine.bandwidth;
    model.gspmv.flops = machine.flops;
    model.chebyshev_order = static_cast<double>(config.chebyshev_order);

    core::SdSimulation sim_orig(config);
    core::OriginalAlgorithm orig(sim_orig);
    const auto st_orig = orig.run(4);
    model.iters_no_guess = st_orig.mean_first_solve_iters();
    double n2 = 0;
    for (const auto& rec : st_orig.steps) {
      n2 += static_cast<double>(rec.iters_second_solve);
    }
    model.iters_second = n2 / static_cast<double>(st_orig.steps.size());

    core::SdSimulation sim_mrhs(config);
    core::MrhsAlgorithm mrhs(sim_mrhs, {.rhs = 8});
    const auto st_mrhs = mrhs.run(8);
    double n1 = 0;
    for (std::size_t k = 1; k < st_mrhs.steps.size(); ++k) {
      n1 += static_cast<double>(st_mrhs.steps[k].iters_first_solve);
    }
    model.iters_first_guess =
        n1 / static_cast<double>(st_mrhs.steps.size() - 1);
  }
  std::printf("model: N = %.0f, N1 = %.0f, N2 = %.0f, Cmax = %.0f, "
              "B = %.1f GB/s, F = %.1f Gflop/s\n"
              "(paper Fig 7 parameters: N = 162, N1 = 80, N2 = 63, "
              "Cmax = 30, B = 19.4 GB/s)\n\n",
              model.iters_no_guess, model.iters_first_guess,
              model.iters_second, model.chebyshev_order,
              machine.bandwidth * 1e-9, machine.flops * 1e-9);

  util::Table table({"m", "achieved s/step", "predicted", "bw estimate",
                     "compute estimate"});
  double best_measured = 1e300;
  std::size_t best_m = 1;
  for (std::size_t m : ms) {
    core::SdSimulation sim(config);
    core::MrhsAlgorithm mrhs(sim, {.rhs = m});
    const std::size_t steps =
        steps_per_m > 0 ? static_cast<std::size_t>(steps_per_m) : m;
    const auto stats = mrhs.run(steps);
    harness.add_phases(stats, "m=" + std::to_string(m) + "/");
    const double achieved = stats.avg_step_seconds();
    harness.report().set_value("step_seconds.m=" + std::to_string(m),
                               achieved);
    if (achieved < best_measured) {
      best_measured = achieved;
      best_m = m;
    }
    table.add_row({std::to_string(m), util::Table::fmt(achieved, 3),
                   util::Table::fmt(model.step_time(m), 3),
                   util::Table::fmt(model.step_time_bandwidth_only(m), 3),
                   util::Table::fmt(model.step_time_compute_only(m), 3)});
  }
  table.print();

  std::printf("\nachieved optimum near m = %zu; model m_optimal = %zu, "
              "GSPMV crossover m_s = %zu\n",
              best_m, model.optimal_m(64), model.crossover_m(64));
  std::printf("paper: m_optimal = 10, m_s = 12 for the 300k/50%% system\n");

  // Roofline samples for the committed trajectory: bare GSPMV on this
  // system's matrix at m = 1 and at the achieved optimum.
  {
    core::SdSimulation sim(config);
    const auto rmat = sim.assemble().matrix;
    const sparse::GspmvEngine engine(rmat, 0);
    const double t1 = perf::measure_gspmv_seconds(rmat, 1);
    const double topt = perf::measure_gspmv_seconds(rmat, best_m);
    harness.ledger().add_kernel_sample("gspmv@m=1", engine.min_bytes(1),
                                       engine.flops(1), t1);
    harness.ledger().add_kernel_sample("gspmv@m=opt",
                                       engine.min_bytes(best_m),
                                       engine.flops(best_m), topt);
  }
  harness.report().set_value("achieved_opt_m", static_cast<double>(best_m));
  harness.report().set_value("best_step_seconds", best_measured);
  harness.report().set_value("model_opt_m",
                             static_cast<double>(model.optimal_m(64)));
  harness.report().set_value("model_crossover_m",
                             static_cast<double>(model.crossover_m(64)));
  harness.finish("Figure 7 — predicted and achieved step time vs m");
  return 0;
}
