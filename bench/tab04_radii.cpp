// Paper Table IV: the E. coli cytoplasm protein radius distribution —
// the workload input for every SD experiment. Prints the table and a
// large-sample histogram check of the sampler.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "sd/radii.hpp"

int main(int argc, char** argv) {
  using namespace mrhs;
  int samples = 200000;
  bench::BenchHarness harness("tab04_radii");
  util::ArgParser args("tab04_radii",
                       "Reproduce paper Table IV (workload input)");
  args.add("samples", samples, "sampling check size");
  harness.add_to(args);
  args.parse(argc, argv);
  harness.begin();

  bench::print_header(
      "Table IV — distribution of particle radii (E. coli cytoplasm)",
      "15 bins from 21.42 A (6.07%) to 115.24 A (2.43%)");

  const auto bins = sd::ecoli_cytoplasm_distribution();
  const double mean = sd::distribution_mean(bins);
  const auto radii =
      sd::sample_radii(bins, static_cast<std::size_t>(samples), 7);

  util::Table table({"radius (A)", "paper %", "sampled %", "reduced radius"});
  for (const auto& bin : bins) {
    std::size_t hits = 0;
    const double target = bin.radius_angstrom / mean;
    for (double r : radii) {
      if (std::abs(r - target) < 1e-9) ++hits;
    }
    table.add_row({util::Table::fmt_fixed(bin.radius_angstrom, 2),
                   util::Table::fmt_fixed(bin.fraction * 100.0, 2),
                   util::Table::fmt_fixed(
                       100.0 * static_cast<double>(hits) /
                           static_cast<double>(radii.size()),
                       2),
                   util::Table::fmt_fixed(target, 3)});
  }
  table.print();
  std::printf("distribution mean: %.2f A -> 1 reduced length unit\n", mean);
  harness.report().set_value("distribution_mean_angstrom", mean);
  harness.finish("Table IV — particle radius distribution");
  return 0;
}
