#!/usr/bin/env python3
"""End-to-end check of the observability layer.

Runs the quickstart example with --trace-out / --trace-jsonl /
--metrics-out, then validates that:

  * the Chrome-trace file parses as JSON and has the expected shape
    ({"traceEvents": [...]}, 'X'/'i' events with name/ts/pid/tid);
  * the mandatory top-level spans for an MRHS run are present
    (construct, Chebyshev, solves, chunk, kernels);
  * spans nest sanely (durations non-negative, every span fits inside
    the enclosing mrhs.chunk span on the same thread lane);
  * the JSONL export parses line by line and matches the event count;
  * the metrics file parses and carries CG iteration counts, per-solve
    residual histograms, and a GSPMV effective-bandwidth gauge.

Usage: check_trace.py /path/to/quickstart
Exit code 0 on success; prints the first failure otherwise.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_SPANS = {
    "Construct",
    "Cheb vectors",
    "Calc guesses",
    "1st solve",
    "2nd solve",
    "mrhs.chunk",
    "step.mrhs",
    "block_cg.solve",
    "cg.solve",
    "gspmv.apply",
}

REQUIRED_COUNTERS = {
    "cg.solves",
    "cg.iterations",
    "block_cg.solves",
    "stepper.steps",
    "stepper.chunks",
    "gspmv.calls",
    "gspmv.bytes",
    "gspmv.flops",
}

REQUIRED_HISTOGRAMS = {
    "cg.iterations_per_solve",
    "cg.exit_relative_residual",
    "block_cg.exit_relative_residual",
    "mrhs.guess_rel_error",
}


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def check_event(event):
    for key in ("name", "ph", "ts", "pid", "tid"):
        if key not in event:
            fail(f"event missing '{key}': {event}")
    if event["ph"] not in ("X", "i"):
        fail(f"unexpected event phase {event['ph']!r}: {event}")
    if event["ph"] == "X":
        if "dur" not in event:
            fail(f"complete event missing 'dur': {event}")
        if event["dur"] < 0:
            fail(f"negative duration: {event}")


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} /path/to/quickstart")
    quickstart = Path(sys.argv[1])
    if not quickstart.exists():
        fail(f"quickstart binary not found: {quickstart}")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        jsonl_path = Path(tmp) / "trace.jsonl"
        metrics_path = Path(tmp) / "metrics.json"
        cmd = [
            str(quickstart),
            "--particles", "200",
            "--steps", "4",
            "--rhs", "2",
            "--trace-out", str(trace_path),
            "--trace-jsonl", str(jsonl_path),
            "--metrics-out", str(metrics_path),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"quickstart exited {proc.returncode}:\n{proc.stderr}")

        for path in (trace_path, jsonl_path, metrics_path):
            if not path.exists():
                fail(f"artifact not written: {path}")

        # --- Chrome trace ---------------------------------------------
        trace = json.loads(trace_path.read_text())
        if "traceEvents" not in trace:
            fail("trace JSON has no 'traceEvents' key")
        events = trace["traceEvents"]
        if not events:
            fail("trace has no events")
        for event in events:
            check_event(event)

        names = {e["name"] for e in events}
        missing = REQUIRED_SPANS - names
        if missing:
            fail(f"missing required spans: {sorted(missing)}")

        # Nesting sanity: every event on a chunk's thread lane that
        # starts inside the chunk must also end inside it.
        chunks = [e for e in events if e["name"] == "mrhs.chunk"]
        if not chunks:
            fail("no mrhs.chunk spans")
        for chunk in chunks:
            lo, hi = chunk["ts"], chunk["ts"] + chunk["dur"]
            for e in events:
                if e is chunk or e["tid"] != chunk["tid"] or e["ph"] != "X":
                    continue
                starts_inside = lo <= e["ts"] < hi
                if starts_inside and e["ts"] + e["dur"] > hi + 1.0:
                    fail(f"span leaks out of its chunk: {e['name']}")

        # --- JSONL ----------------------------------------------------
        lines = [ln for ln in jsonl_path.read_text().splitlines() if ln]
        if len(lines) != len(events):
            fail(f"jsonl has {len(lines)} lines but trace has "
                 f"{len(events)} events")
        for line in lines:
            check_event(json.loads(line))

        # --- Metrics --------------------------------------------------
        metrics = json.loads(metrics_path.read_text())
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                fail(f"metrics JSON has no '{section}' section")

        counters = metrics["counters"]
        missing = REQUIRED_COUNTERS - counters.keys()
        if missing:
            fail(f"missing counters: {sorted(missing)}")
        for name in ("cg.solves", "stepper.steps", "gspmv.calls"):
            if counters[name] <= 0:
                fail(f"counter {name} is not positive: {counters[name]}")

        if counters["stepper.steps"] != 4:
            fail(f"expected 4 steps, metrics say {counters['stepper.steps']}")

        gauge = metrics["gauges"].get("gspmv.effective_bandwidth_gbps", 0)
        if gauge <= 0:
            fail(f"gspmv.effective_bandwidth_gbps not positive: {gauge}")

        hists = metrics["histograms"]
        missing = REQUIRED_HISTOGRAMS - hists.keys()
        if missing:
            fail(f"missing histograms: {sorted(missing)}")
        for name in REQUIRED_HISTOGRAMS:
            hist = hists[name]
            for key in ("bounds", "counts", "count", "sum", "min", "max"):
                if key not in hist:
                    fail(f"histogram {name} missing '{key}'")
            if len(hist["counts"]) != len(hist["bounds"]) + 1:
                fail(f"histogram {name}: counts/bounds size mismatch")
            if hist["count"] <= 0:
                fail(f"histogram {name} recorded no observations")
            if sum(hist["counts"]) != hist["count"]:
                fail(f"histogram {name}: bucket counts do not sum to count")

    print(f"check_trace: OK ({len(events)} events, "
          f"{len(counters)} counters, {len(hists)} histograms)")


if __name__ == "__main__":
    main()
