#!/usr/bin/env python3
"""End-to-end check of checkpoint/restart through the quickstart CLI.

Drives the quickstart binary three ways and cross-validates:

  * straight:  10 steps in one process;
  * resumed:   6 steps with --checkpoint-out + --stop-after, then a
    second process with --resume for the remaining 4 steps (the stop
    point is deliberately mid-chunk for --rhs 4, so the resume path
    has to restore the stashed initial-guess block);
  * the final particle positions of both runs, written as hex floats
    (%a), are compared for EXACT equality — bitwise, not approximate;
  * the JSON sidecar next to the checkpoint parses and matches;
  * a corrupted checkpoint and a truncated checkpoint are rejected
    with a nonzero exit and a diagnostic on stderr.

Usage: check_resume.py /path/to/quickstart
Exit code 0 on success; prints the first failure otherwise.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

PARTICLES = "120"
STEPS = 10
STOP_AFTER = 6  # mid-chunk with --rhs 4: chunk [4,8) interrupted at 6
RHS = "4"


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def run(binary, *flags, expect_ok=True):
    cmd = [str(binary), "--particles", PARTICLES, "--phi", "0.35",
           "--steps", str(STEPS), "--rhs", RHS, *flags]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=240)
    if expect_ok and proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc


def read_positions(path):
    lines = Path(path).read_text().strip().splitlines()
    if len(lines) != int(PARTICLES):
        fail(f"{path}: expected {PARTICLES} position lines, got {len(lines)}")
    return lines


def main():
    if len(sys.argv) != 2:
        fail("usage: check_resume.py /path/to/quickstart")
    binary = Path(sys.argv[1])
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory(prefix="mrhs_resume_") as td:
        tmp = Path(td)
        straight_pos = tmp / "straight.txt"
        resumed_pos = tmp / "resumed.txt"
        ckpt = tmp / "run.ckpt"

        # Straight reference run.
        run(binary, "--positions-out", str(straight_pos))

        # Interrupted run: stops after 6 of 10 steps, checkpointing.
        proc = run(binary, "--checkpoint-out", str(ckpt),
                   "--stop-after", str(STOP_AFTER))
        if "checkpoint: step 6" not in proc.stdout:
            fail(f"expected a step-6 checkpoint, got:\n{proc.stdout}")
        if not ckpt.exists():
            fail("checkpoint file was not written")

        sidecar = Path(str(ckpt) + ".json")
        if not sidecar.exists():
            fail("JSON sidecar was not written")
        meta = json.loads(sidecar.read_text())
        for key, want in [("format", "mrhs-checkpoint"),
                          ("algorithm", "mrhs"),
                          ("step", STOP_AFTER),
                          ("particles", int(PARTICLES)),
                          ("chunk_active", True)]:
            if meta.get(key) != want:
                fail(f"sidecar {key} = {meta.get(key)!r}, expected {want!r}")

        # Resume and finish.
        proc = run(binary, "--resume", str(ckpt),
                   "--positions-out", str(resumed_pos))
        if f"resumed from {ckpt} at step {STOP_AFTER}" not in proc.stdout:
            fail(f"missing resume banner:\n{proc.stdout}")

        straight = read_positions(straight_pos)
        resumed = read_positions(resumed_pos)
        mismatches = [i for i, (a, b) in enumerate(zip(straight, resumed))
                      if a != b]
        if mismatches:
            i = mismatches[0]
            fail(f"{len(mismatches)} particles differ after resume; "
                 f"first at index {i}:\n  straight: {straight[i]}\n"
                 f"  resumed:  {resumed[i]}")

        # Corrupted checkpoint: flip one payload byte -> must be refused.
        blob = bytearray(ckpt.read_bytes())
        corrupt = tmp / "corrupt.ckpt"
        blob[len(blob) // 2] ^= 0x01
        corrupt.write_bytes(bytes(blob))
        proc = run(binary, "--resume", str(corrupt), expect_ok=False)
        if proc.returncode == 0:
            fail("corrupted checkpoint was accepted")
        if "corrupt" not in proc.stderr.lower():
            fail(f"corruption not diagnosed on stderr:\n{proc.stderr}")

        # Truncated checkpoint -> must be refused.
        truncated = tmp / "truncated.ckpt"
        truncated.write_bytes(ckpt.read_bytes()[: len(blob) // 3])
        proc = run(binary, "--resume", str(truncated), expect_ok=False)
        if proc.returncode == 0:
            fail("truncated checkpoint was accepted")

    print("OK: resumed trajectory is bitwise identical; "
          "corrupt/truncated checkpoints rejected")


if __name__ == "__main__":
    main()
