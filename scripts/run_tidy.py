#!/usr/bin/env python3
"""Run clang-tidy over the repo's translation units.

Registered as the `clang_tidy` ctest target with SKIP_RETURN_CODE 77:
when no clang-tidy binary exists on PATH (the default gcc-only
container) the target reports SKIPPED instead of failing, so the suite
stays green while CI images that do ship clang-tidy get the full gate.

Requires a compile_commands.json (the top-level CMakeLists sets
CMAKE_EXPORT_COMPILE_COMMANDS ON unconditionally, and every preset
exports it too); TU selection is shared with scripts/mrhs_analyze.py
via mrhs_compiledb so both tools agree on what "the build" is.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from mrhs_compiledb import select_sources  # noqa: E402

SKIP = 77  # must match SKIP_RETURN_CODE in the ctest registration

CANDIDATE_NAMES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(21, 13, -1)]


def find_clang_tidy() -> str | None:
    for name in CANDIDATE_NAMES:
        path = shutil.which(name)
        if path:
            return path
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, required=True,
                        help="CMake build dir containing compile_commands.json")
    parser.add_argument("--source-dir", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root")
    parser.add_argument("--subdirs", nargs="*",
                        default=["src", "tests", "bench", "examples"],
                        help="source subtrees to lint")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="parallel clang-tidy processes")
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_tidy: no clang-tidy on PATH; skipping (exit 77)")
        return SKIP

    files = select_sources(args.build_dir.resolve(),
                           args.source_dir.resolve(), args.subdirs)
    if not files:
        print("run_tidy: no translation units matched", file=sys.stderr)
        return 2
    print(f"run_tidy: {tidy}, {len(files)} translation units, "
          f"-j{args.jobs}")

    failures = 0

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, rc, output in pool.map(run_one, files):
            rel = os.path.relpath(path, args.source_dir)
            if rc != 0:
                failures += 1
                print(f"--- {rel}: FAILED")
                print(output)
            else:
                print(f"    {rel}: ok")

    if failures:
        print(f"run_tidy: {failures}/{len(files)} files with findings")
        return 1
    print("run_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
