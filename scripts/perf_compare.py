#!/usr/bin/env python3
"""Compare two mrhs-bench-trajectory files (scripts/bench_runner.py
output) with noise-aware thresholds.

For every bench present in both trajectories, three metric classes are
compared, each as the *median across the runs* of each file:

  phase seconds            lower is better   tolerance --time-tol
  kernel GB/s and GF/s     higher is better  tolerance --rate-tol
  published "values"       direction inferred from the key name
                           (*seconds*/*ms* lower; *speedup*/*gbps*/
                           *gflops* higher; anything else informational)

Tiny absolute magnitudes are skipped (--min-seconds, --min-rate):
sub-millisecond phases are timer noise, not signal.

Exit codes: 0 no regression, 1 regression found, 2 schema violation
(wrong schema name/version — never compare apples to oranges).
--report-only downgrades regressions to exit 0 (for noisy CI runners)
while schema violations still hard-fail.

`--self-test` runs the comparator against built-in synthetic fixtures
(a clean self-diff plus an injected 2x regression) and exits nonzero
unless both behave as specified.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

SCHEMA_NAME = "mrhs-bench-trajectory"
SCHEMA_VERSION = 1


def load_trajectory(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA_NAME or \
            doc.get("schema_version") != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schema {doc.get('schema')!r} "
            f"v{doc.get('schema_version')!r}, want {SCHEMA_NAME!r} "
            f"v{SCHEMA_VERSION}")
    if not isinstance(doc.get("benches"), dict):
        raise SchemaError(f"{path}: missing 'benches' object")
    return doc


class SchemaError(Exception):
    pass


def median_metrics(runs: list[dict]) -> dict[str, float]:
    """Flatten each run's comparable metrics, then take per-key
    medians across runs. Keys are class-prefixed:
    phase/<name>.seconds, kernel/<name>.gbytes_per_sec, value/<key>."""
    per_run: list[dict[str, float]] = []
    for run in runs:
        flat: dict[str, float] = {}
        for p in run.get("phases", []):
            flat[f"phase/{p['name']}.seconds"] = float(p["seconds"])
        for k in run.get("kernels", []):
            if float(k.get("seconds", 0.0)) <= 0.0:
                continue
            flat[f"kernel/{k['name']}.gbytes_per_sec"] = \
                float(k["gbytes_per_sec"])
            flat[f"kernel/{k['name']}.gflops_per_sec"] = \
                float(k["gflops_per_sec"])
        for key, value in run.get("values", {}).items():
            flat[f"value/{key}"] = float(value)
        per_run.append(flat)
    keys = set()
    for flat in per_run:
        keys |= flat.keys()
    return {key: statistics.median([f[key] for f in per_run if key in f])
            for key in keys}


def direction_of(key: str) -> str:
    """'lower', 'higher', or 'info' (not regression-checked)."""
    if key.startswith("phase/"):
        return "lower"
    if key.startswith("kernel/"):
        return "higher"
    name = key.lower()
    if any(tag in name for tag in ("seconds", "_ms", ".ms", "ms.")):
        return "lower"
    if any(tag in name for tag in ("speedup", "gbps", "gflops")):
        return "higher"
    return "info"


def compare(base: dict, cand: dict, time_tol: float, rate_tol: float,
            min_seconds: float, min_rate: float) -> tuple[list[str], int]:
    """Return (regression messages, metrics compared)."""
    regressions: list[str] = []
    compared = 0
    for bench in sorted(set(base["benches"]) & set(cand["benches"])):
        bm = median_metrics(base["benches"][bench].get("runs", []))
        cm = median_metrics(cand["benches"][bench].get("runs", []))
        for key in sorted(set(bm) & set(cm)):
            direction = direction_of(key)
            if direction == "info":
                continue
            old, new = bm[key], cm[key]
            if direction == "lower":
                if max(old, new) < min_seconds:
                    continue
                tol = time_tol
                worse = new > old * (1.0 + tol)
            else:
                if max(old, new) < min_rate:
                    continue
                tol = rate_tol
                worse = new < old * (1.0 - tol)
            compared += 1
            if worse and old > 0.0:
                change = (new - old) / old * 100.0
                regressions.append(
                    f"{bench}: {key}: {old:.4g} -> {new:.4g} "
                    f"({change:+.1f}%, tol {tol * 100:.0f}%)")
    return regressions, compared


def synthetic_trajectory(slow: float = 1.0) -> dict:
    """Fixture: one bench, three runs with mild jitter. `slow` scales
    phase time up and kernel rate down (slow > 1 => regression)."""
    runs = []
    for jitter in (0.98, 1.0, 1.03):
        runs.append({
            "schema": "mrhs-bench-report", "schema_version": 1,
            "bench": "synthetic",
            "phases": [
                {"name": "1st solve", "seconds": 0.5 * slow * jitter,
                 "calls": 16},
                {"name": "tiny", "seconds": 1e-5 * slow * jitter,
                 "calls": 1},
            ],
            "kernels": [
                {"name": "gspmv", "bytes": 1e9, "flops": 2e8,
                 "seconds": 0.04 * slow * jitter,
                 "gbytes_per_sec": 25.0 / (slow * jitter),
                 "gflops_per_sec": 5.0 / (slow * jitter)},
            ],
            "values": {"speedup": 2.0 / slow, "note": 42.0 * slow},
        })
    return {"schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION,
            "created": "self-test", "git_sha": "",
            "benches": {"synthetic": {"runs": runs}}}


def self_test(time_tol: float, rate_tol: float) -> int:
    base = synthetic_trajectory(1.0)
    same = synthetic_trajectory(1.0)
    regressed = synthetic_trajectory(2.0)

    clean, n_clean = compare(base, same, time_tol, rate_tol, 1e-3, 0.1)
    if clean:
        print("self-test: FAIL, self-diff flagged regressions:")
        for r in clean:
            print(f"  {r}")
        return 1
    if n_clean == 0:
        print("self-test: FAIL, self-diff compared zero metrics")
        return 1

    found, _ = compare(base, regressed, time_tol, rate_tol, 1e-3, 0.1)
    # The 2x slowdown must be caught in every checked class: phase
    # time, kernel rates, and the direction-inferred speedup value.
    wanted = ("phase/1st solve.seconds", "kernel/gspmv.gbytes_per_sec",
              "value/speedup")
    missing = [w for w in wanted
               if not any(w in r for r in found)]
    if missing:
        print(f"self-test: FAIL, regression not flagged for: {missing}")
        for r in found:
            print(f"  found: {r}")
        return 1
    # The sub-millisecond phase and the directionless "note" value must
    # NOT be flagged (noise floor / informational).
    for quiet in ("phase/tiny.seconds", "value/note"):
        if any(quiet in r for r in found):
            print(f"self-test: FAIL, noise metric flagged: {quiet}")
            return 1
    print(f"self-test: PASS ({n_clean} metrics on self-diff, "
          f"{len(found)} regressions on 2x-slowdown fixture)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline trajectory")
    parser.add_argument("candidate", nargs="?", help="candidate trajectory")
    parser.add_argument("--time-tol", type=float, default=0.30,
                        help="relative slowdown tolerated on times")
    parser.add_argument("--rate-tol", type=float, default=0.25,
                        help="relative drop tolerated on GB/s / GF/s")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="ignore phases faster than this (noise)")
    parser.add_argument("--min-rate", type=float, default=0.1,
                        help="ignore rates below this many G/s")
    parser.add_argument("--report-only", action="store_true",
                        help="print regressions but exit 0 (noisy runners)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against built-in synthetic fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.time_tol, args.rate_tol)
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate are required "
                     "(or use --self-test)")

    try:
        base = load_trajectory(args.baseline)
        cand = load_trajectory(args.candidate)
    except SchemaError as err:
        print(f"perf_compare: SCHEMA: {err}")
        return 2

    regressions, compared = compare(base, cand, args.time_tol,
                                    args.rate_tol, args.min_seconds,
                                    args.min_rate)
    shared = sorted(set(base["benches"]) & set(cand["benches"]))
    print(f"perf_compare: {len(shared)} shared benches, "
          f"{compared} metrics compared")
    if not regressions:
        print("perf_compare: no regressions")
        return 0
    print(f"perf_compare: {len(regressions)} regression(s):")
    for r in regressions:
        print(f"  {r}")
    if args.report_only:
        print("perf_compare: --report-only, exiting 0")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
