#!/usr/bin/env python3
"""Shared compile_commands.json access for the repo's analysis tools.

Both scripts/run_tidy.py (clang-tidy driver) and scripts/mrhs_analyze.py
(the semantic analyzer) are driven by the same compilation database —
every CMake preset exports one (CMAKE_EXPORT_COMPILE_COMMANDS is ON both
in the top-level CMakeLists and, belt-and-braces, in each preset's cache
variables). Centralizing the loading/TU-selection logic here keeps the
two tools agreeing on exactly which translation units "the build"
consists of.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path


def find_compile_db(build_dir: Path) -> Path | None:
    """Return the compile_commands.json under build_dir, if present."""
    db = build_dir / "compile_commands.json"
    return db if db.exists() else None


def load_entries(db_path: Path) -> list[dict]:
    """Load the raw database entries (file/directory/command dicts)."""
    return json.loads(db_path.read_text())


def select_sources(build_dir: Path, source_dir: Path,
                   subdirs: list[str]) -> list[str]:
    """Translation units from the database that live under the given
    source subtrees, as sorted absolute paths. Exits(2) with a message
    when the database is missing — callers want a hard error, not an
    empty list, because an absent database means CMake was never run."""
    db_path = find_compile_db(build_dir)
    if db_path is None:
        print(f"{Path(sys.argv[0]).name}: {build_dir}/compile_commands.json "
              f"not found; configure with CMake first", file=sys.stderr)
        sys.exit(2)
    wanted = [str((source_dir / d).resolve()) + os.sep for d in subdirs]
    entries = load_entries(db_path)
    return sorted({
        str(Path(e["file"]).resolve())
        for e in entries
        if any(str(Path(e["file"]).resolve()).startswith(w) for w in wanted)
    })


def compile_args(db_path: Path, file: str) -> list[str]:
    """Compiler arguments for one TU (for libclang parsing): the entry's
    command minus the compiler itself, the -o/-c output plumbing, and
    GCC-only flags libclang chokes on."""
    import shlex

    for e in load_entries(db_path):
        if str(Path(e["file"]).resolve()) != str(Path(file).resolve()):
            continue
        argv = e.get("arguments") or shlex.split(e.get("command", ""))
        out: list[str] = []
        skip_next = False
        for a in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c"):
                skip_next = a == "-o"
                continue
            if a == str(Path(e["file"])) or a.endswith(Path(e["file"]).name):
                continue
            if a.startswith("-f") and "sanitize" in a:
                continue
            out.append(a)
        # Relative -I paths are resolved against the entry's directory.
        directory = e.get("directory")
        if directory:
            out = ["-working-directory", directory] + out
        return out
    return []


__all__ = ["find_compile_db", "load_entries", "select_sources",
           "compile_args"]
