#!/usr/bin/env python3
"""mrhs_lint: repo-specific invariants no generic linter knows.

Registered as the `mrhs_lint` ctest target. Exit 0 when clean, 1 with
a file:line report otherwise.

Rules
-----
obs-literal-name
    The OBS_* macros cache the resolved metric handle in a
    function-local static keyed by *call site*, not by name. A
    non-literal name therefore records every call under whatever name
    the first execution happened to pass (the PR 2 footgun). First
    argument of OBS_COUNTER_ADD / OBS_GAUGE_SET / OBS_HISTOGRAM_OBSERVE
    / OBS_SPAN / OBS_INSTANT (second for OBS_SPAN_VAR) must be a string
    literal.

solve-status-discarded
    Solver entry points return a result carrying SolveStatus; a call
    whose result is discarded (expression statement) silently drops
    breakdown/stagnation. Callers must bind and inspect the result.

solve-status-nodiscard
    The declarations of those entry points (and their result structs)
    must stay [[nodiscard]] so the compiler backs the rule above.

aligned-alloc-outside-util
    Raw std::aligned_alloc / posix_memalign / operator new with
    align_val_t outside util/aligned.hpp bypasses AlignedAllocator and
    its 64-byte contract; consumers must use util::AlignedVector (the
    allocator asserts the contract in one place).

aligned-load-contract
    Files using *aligned* SIMD loads/stores (_mm256_load_pd,
    _mm512_load_pd, ...) on data that crosses a function boundary must
    carry an MRHS_ASSUME_ALIGNED contract (or a local alignas buffer)
    in the same file, so debug/sanitizer builds verify the alignment
    the intrinsic assumes.

no-float-in-double-kernels
    The numerical core (src/sparse, src/solver, src/dense) is
    double-precision end to end; a stray `float` silently halves
    precision (the inverse of the paper's "no double accumulation in
    float kernels" rule — this codebase is the double side).

no-raw-omp-parallel
    `#pragma omp parallel` outside util/parallel.hpp bypasses the
    threading backend abstraction; such a region would not run (or be
    TSan-checked) on the std::thread backend. Use
    util::parallel_regions / util::parallel_for.

fault-site-registry
    The first argument of MRHS_FAULT_POINT / MRHS_FAULT_FIRED must be
    a string literal naming a site in the documented kFaultSites table
    (src/util/fault_injection.hpp). A computed name would defeat the
    registry's arm-time validation, and an undocumented site could
    never be armed from the CLI — a chaos schedule naming it would be
    rejected while the site silently never fires.

bench-report
    Every bench binary (bench/*.cpp with a main()) must emit a
    machine-readable BenchReport sidecar via bench::BenchHarness —
    printf-only benches are invisible to scripts/bench_runner.py and
    the BENCH_*.json regression pipeline, so their numbers silently
    fall out of the performance history.

assembly-via-engine
    ResistanceAssembler (and the removed free assemble_resistance) is
    an implementation detail of sd::AssemblyEngine. A direct call
    outside src/sd bypasses the engine's dirty-pair tracking and
    pattern cache, so its matrix silently diverges from the engine's
    incremental state and none of the assembly.* counters fire.
    Construct an AssemblyEngine and use assemble_full() /
    assemble_incremental() instead.

kernel-via-dispatch
    The block-row microkernels (kernels::block_row_*) are internal to
    src/sparse: they are `static inline`, compiled per-TU under
    different -m flags, and only safe to run on the ISA their TU was
    compiled for. A direct call outside src/sparse would bypass the
    runtime cpuid check in kernels::Dispatch and could execute AVX-512
    instructions on a machine without them (SIGILL), and it would skip
    the --kernel / MRHS_KERNEL override. Go through GspmvEngine::apply
    or kernels::Dispatch::select/variant instead.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOLVER_ENTRY_POINTS = [
    "conjugate_gradient",
    "preconditioned_conjugate_gradient",
    "block_conjugate_gradient",
    "block_solve_with_ladder",
]

NODISCARD_DECLS = {
    "src/solver/cg.hpp": ["CgResult conjugate_gradient",
                          "CgResult preconditioned_conjugate_gradient"],
    "src/solver/block_cg.hpp": ["BlockCgResult block_conjugate_gradient"],
    "src/solver/fault_tolerance.hpp": ["LadderResult block_solve_with_ladder"],
}

OBS_MACROS_ARG1 = ["OBS_COUNTER_ADD", "OBS_GAUGE_SET",
                   "OBS_HISTOGRAM_OBSERVE", "OBS_SPAN", "OBS_INSTANT"]
OBS_MACROS_ARG2 = ["OBS_SPAN_VAR"]

FAULT_MACROS = ["MRHS_FAULT_POINT", "MRHS_FAULT_FIRED"]
FAULT_SITE_HEADER = "src/util/fault_injection.hpp"

ALIGNED_LOAD_RE = re.compile(
    r"_mm(?:256|512)_(?:load|store)_(?:pd|ps|si256|si512)\b|"
    r"_mm512_(?:load|store)_epi\d+\b")

DOUBLE_KERNEL_DIRS = ("src/sparse", "src/solver", "src/dense")

# One-line summaries for --list-rules; full rationale lives in the
# module docstring above. The table format is shared with
# scripts/mrhs_analyze.py --list-rules so the two tools read as one
# lint surface.
RULE_SUMMARIES = {
    "obs-literal-name": "OBS_* macro names must be string literals "
                        "(handle cached per call site)",
    "solve-status-discarded": "regex fallback: solver entry-point result "
                              "must not be a bare statement",
    "solve-status-nodiscard": "solver entry-point declarations stay "
                              "[[nodiscard]]",
    "aligned-alloc-outside-util": "raw aligned allocation only in "
                                  "util/aligned.hpp",
    "aligned-load-contract": "aligned SIMD loads need an "
                             "MRHS_ASSUME_ALIGNED contract in-file",
    "no-float-in-double-kernels": "no float in the double-precision "
                                  "numerical core",
    "no-raw-omp-parallel": "regex fallback: no raw `#pragma omp parallel` "
                           "outside util/parallel.hpp",
    "fault-site-registry": "MRHS_FAULT_* sites are literals from the "
                           "documented kFaultSites table",
    "bench-report": "every bench binary emits a BenchReport sidecar",
    "assembly-via-engine": "resistance assembly goes through "
                           "sd::AssemblyEngine outside src/sd",
    "kernel-via-dispatch": "block_row_* kernels called only via "
                           "kernels::Dispatch inside src/sparse",
}


def print_rules() -> None:
    print(f"{'rule':<28} {'engine':<12} summary")
    print(f"{'-' * 28} {'-' * 12} {'-' * 40}")
    for name in sorted(RULE_SUMMARIES):
        print(f"{name:<28} {'mrhs_lint':<12} {RULE_SUMMARIES[name]}")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure exactly (every newline in the input survives, so line
    numbers computed on the result map back to the source)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            # Skip to (but keep) the newline so line numbers survive.
            # Without the continue the old code appended a stray '/'
            # and swallowed the newline, shifting every later line.
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
            continue
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
            continue
        elif c == '"' or (c == "'" and not (i > 0 and (text[i - 1].isalnum()
                                                       or text[i - 1] == "_"))):
            # The apostrophe guard skips C++14 digit separators
            # (10'000), which are not character literals.
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q:
                    break
                j += 1
            body = "".join(ch if ch == "\n" else " " for ch in text[i + 1:j])
            out.append(q + body + (q if j < n else ""))
            i = j + 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def load_fault_sites(repo: Path) -> set[str]:
    """Parse the documented site table out of fault_injection.hpp."""
    path = repo / FAULT_SITE_HEADER
    if not path.exists():
        return set()
    m = re.search(r"kFaultSites\[\]\s*=\s*\{(.*?)\};", path.read_text(),
                  re.DOTALL)
    if not m:
        return set()
    return set(re.findall(r'"([^"]+)"', m.group(1)))


class Linter:
    def __init__(self, repo: Path):
        self.repo = repo
        self.findings: list[tuple[str, int, str, str]] = []
        self.fault_sites = load_fault_sites(repo)

    def report(self, path: Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.repo)
        self.findings.append((str(rel), line, rule, msg))

    # -- rules ---------------------------------------------------------

    def check_obs_literal_names(self, path: Path, raw_lines: list[str]) -> None:
        for lineno, line in enumerate(raw_lines, 1):
            code = line.split("//")[0]
            for macro in OBS_MACROS_ARG1 + OBS_MACROS_ARG2:
                for m in re.finditer(rf"\b{macro}\s*\(", code):
                    # Skip the macro definitions themselves.
                    if "#define" in code:
                        continue
                    args = code[m.end():]
                    if macro in OBS_MACROS_ARG2:
                        # OBS_SPAN_VAR(var, "name"): skip the var name.
                        comma = args.find(",")
                        if comma == -1:
                            continue
                        args = args[comma + 1:]
                    first = args.lstrip()
                    if not first.startswith('"'):
                        self.report(
                            path, lineno, "obs-literal-name",
                            f"{macro} name must be a string literal "
                            f"(handle is cached per call site)")

    def check_solve_status_discarded(self, path: Path, text: str) -> None:
        stripped = strip_comments_and_strings(text)
        for fn in SOLVER_ENTRY_POINTS:
            for m in re.finditer(
                    rf"(?m)^(\s*)((?:\w+::)*){fn}\s*\(", stripped):
                # Only a genuine expression statement discards the
                # result: the previous non-whitespace character must be
                # `;`, `{`, or `}` (or start of file). A continuation
                # line of `auto r = ...` / `return ...` has `=` or an
                # identifier character there instead.
                prev = stripped[:m.start()].rstrip()
                if prev and prev[-1] not in ";{}":
                    continue
                lineno = stripped.count("\n", 0, m.start()) + 1
                self.report(
                    path, lineno, "solve-status-discarded",
                    f"result of {fn}() is discarded; bind it and check "
                    f"SolveStatus (solve_succeeded)")

    def check_nodiscard_decls(self) -> None:
        for rel, decls in NODISCARD_DECLS.items():
            path = self.repo / rel
            if not path.exists():
                continue
            text = path.read_text()
            for decl in decls:
                idx = text.find(decl)
                if idx == -1:
                    continue  # entry point renamed; discard rule still covers calls
                window = text[max(0, idx - 120):idx]
                if "[[nodiscard]]" not in window:
                    lineno = text.count("\n", 0, idx) + 1
                    self.report(
                        path, lineno, "solve-status-nodiscard",
                        f"declaration of {decl.split()[-1]} must be "
                        f"[[nodiscard]] so discarded solves fail the build")

    def check_aligned_alloc(self, path: Path, raw_lines: list[str]) -> None:
        if path.match("*/util/aligned.hpp"):
            return
        for lineno, line in enumerate(raw_lines, 1):
            code = line.split("//")[0]
            if re.search(r"\b(?:std::)?aligned_alloc\s*\(|\bposix_memalign\s*\(",
                         code) or \
               ("operator new" in code and "align_val_t" in code):
                self.report(
                    path, lineno, "aligned-alloc-outside-util",
                    "raw aligned allocation outside util/aligned.hpp; "
                    "use util::AlignedVector so the 64-byte contract is "
                    "asserted in one place")

    def check_aligned_load_contract(self, path: Path, text: str,
                                    raw_lines: list[str]) -> None:
        hits = []
        for lineno, line in enumerate(raw_lines, 1):
            code = line.split("//")[0]
            if ALIGNED_LOAD_RE.search(code):
                hits.append(lineno)
        if not hits:
            return
        if "MRHS_ASSUME_ALIGNED" in text or "alignas(" in text:
            return
        self.report(
            path, hits[0], "aligned-load-contract",
            "aligned SIMD load/store without an MRHS_ASSUME_ALIGNED "
            "contract (or local alignas buffer) in this file")

    def check_no_float(self, path: Path, raw_lines: list[str]) -> None:
        rel = str(path.relative_to(self.repo))
        if not rel.startswith(DOUBLE_KERNEL_DIRS):
            return
        for lineno, line in enumerate(raw_lines, 1):
            code = strip_comments_and_strings(line.split("//")[0])
            if re.search(r"\bfloat\b", code):
                self.report(
                    path, lineno, "no-float-in-double-kernels",
                    "float in the double-precision numerical core; "
                    "use double (mixed precision silently loses bits)")

    def check_no_raw_omp(self, path: Path, raw_lines: list[str]) -> None:
        if path.name == "parallel.hpp":
            return
        for lineno, line in enumerate(raw_lines, 1):
            if re.search(r"#\s*pragma\s+omp\s+parallel\b",
                         line.split("//")[0]):
                self.report(
                    path, lineno, "no-raw-omp-parallel",
                    "raw `#pragma omp parallel` bypasses util/parallel.hpp; "
                    "use util::parallel_regions / util::parallel_for so the "
                    "region runs (and is TSan-checked) on every backend")

    def check_fault_sites(self, path: Path, raw_lines: list[str]) -> None:
        if path.name.startswith("fault_injection."):
            return  # macro definitions + registry implementation
        for lineno, line in enumerate(raw_lines, 1):
            code = line.split("//")[0]
            if "#define" in code:
                continue
            for macro in FAULT_MACROS:
                for m in re.finditer(rf"\b{macro}\s*\(", code):
                    args = code[m.end():].lstrip()
                    lit = re.match(r'"([^"]*)"', args)
                    if lit is None:
                        self.report(
                            path, lineno, "fault-site-registry",
                            f"{macro} site must be a string literal "
                            f"(arm-time validation matches exact names)")
                        continue
                    site = lit.group(1)
                    if self.fault_sites and site not in self.fault_sites:
                        self.report(
                            path, lineno, "fault-site-registry",
                            f'site "{site}" is not in the kFaultSites '
                            f"table ({FAULT_SITE_HEADER}); undocumented "
                            f"sites can never be armed")

    def check_assembly_via_engine(self, path: Path,
                                  raw_lines: list[str]) -> None:
        rel = str(path.relative_to(self.repo))
        if rel.startswith("src/sd/"):
            return  # the engine and the assembler itself live here
        for lineno, line in enumerate(raw_lines, 1):
            code = strip_comments_and_strings(line.split("//")[0])
            if re.search(r"\bResistanceAssembler\b|\bassemble_resistance\s*\(",
                         code):
                self.report(
                    path, lineno, "assembly-via-engine",
                    "direct ResistanceAssembler use outside src/sd bypasses "
                    "sd::AssemblyEngine (dirty-pair tracking, pattern cache, "
                    "assembly.* counters); route through the engine")

    def check_kernel_via_dispatch(self, path: Path,
                                  raw_lines: list[str]) -> None:
        rel = str(path.relative_to(self.repo))
        if rel.startswith("src/sparse/"):
            return  # the kernels, their TUs, and the dispatcher live here
        for lineno, line in enumerate(raw_lines, 1):
            code = strip_comments_and_strings(line.split("//")[0])
            if re.search(r"\bblock_row_\w+\s*\(|\bkernels::block_row_\w+\b",
                         code):
                self.report(
                    path, lineno, "kernel-via-dispatch",
                    "direct block_row_* kernel call outside src/sparse "
                    "bypasses the runtime cpuid dispatch (kernels::Dispatch) "
                    "and the --kernel override; call GspmvEngine::apply or "
                    "Dispatch::select instead")

    def check_bench_report(self, path: Path, text: str) -> None:
        rel = str(path.relative_to(self.repo))
        if not (rel.startswith("bench/") and path.suffix == ".cpp"):
            return
        stripped = strip_comments_and_strings(text)
        if not re.search(r"\bint\s+main\s*\(", stripped):
            return
        if "BenchHarness" not in text and "BenchReport" not in text:
            self.report(
                path, 1, "bench-report",
                "bench binary without a BenchHarness/BenchReport: its "
                "numbers never reach the BENCH_*.json regression "
                "pipeline (wrap main with bench::BenchHarness)")

    # -- driver --------------------------------------------------------

    def run(self) -> int:
        roots = [self.repo / d for d in ("src", "bench", "examples", "tests")]
        files = sorted(
            f for root in roots if root.exists()
            for f in root.rglob("*") if f.suffix in (".hpp", ".cpp", ".h")
            # analyze_fixtures are intentionally-bad TUs for
            # scripts/mrhs_analyze.py --self-test; they violate rules on
            # purpose and are checked there, not here.
            and "tests/analyze_fixtures" not in f.as_posix())
        for path in files:
            text = path.read_text()
            raw_lines = text.splitlines()
            in_obs_header = path.match("*/obs/obs.hpp")
            if not in_obs_header:
                self.check_obs_literal_names(path, raw_lines)
            if "tests/" not in str(path):  # tests may intentionally discard
                self.check_solve_status_discarded(path, text)
            self.check_aligned_alloc(path, raw_lines)
            self.check_aligned_load_contract(path, text, raw_lines)
            self.check_no_float(path, raw_lines)
            self.check_no_raw_omp(path, raw_lines)
            self.check_fault_sites(path, raw_lines)
            self.check_assembly_via_engine(path, raw_lines)
            self.check_kernel_via_dispatch(path, raw_lines)
            self.check_bench_report(path, text)
        self.check_nodiscard_decls()

        if self.findings:
            for rel, line, rule, msg in self.findings:
                print(f"{rel}:{line}: [{rule}] {msg}")
            print(f"\nmrhs_lint: {len(self.findings)} finding(s)")
            return 1
        print("mrhs_lint: clean")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: script's parent dir)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit (same format "
                             "as mrhs_analyze.py --list-rules)")
    parser.add_argument("--doc", action="store_true",
                        help="print the full rule documentation and exit")
    args = parser.parse_args()
    if args.list_rules:
        print_rules()
        return 0
    if args.doc:
        print(__doc__)
        return 0
    return Linter(args.repo.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
