#!/usr/bin/env python3
"""End-to-end chaos drills through the ensemble_serve daemon.

Requires an ensemble_serve binary with fault injection compiled in
(Debug, a sanitizer preset, or -DMRHS_FAULTS=ON); registered as the
`check_ensemble_chaos` ctest only in such builds. Five drills, all
cross-validated against one fault-free baseline:

  * baseline:   4 jobs served at K=4, per-job positions_crc captured;
  * contained:  --faults ensemble.member.rhs.nan@2 poisons the third
    member's packed RHS columns in the first round. The pack-stage
    firewall must catch it before the shared kernel: exactly that job
    reports one rollback, every job completes, and every positions_crc
    is EXACTLY the baseline's — the fault leaves no trace in any
    trajectory, including the victim's (bitwise replay);
  * evicted:    three strikes (@2,@3,@4) exhaust the containment
    ladder (replay, halve-dt, evict) with --max-attempts 1: the victim
    is evicted, the batch keeps going, and the three survivors still
    finish bitwise identical to baseline;
  * resumed:    --kill-after 1 hard-kills the daemon mid-batch
    (_Exit(9)); rerunning with the same journal must yield exactly one
    final per job id, no lost and no duplicated completions, resumed
    flags on the journaled finals, and baseline CRCs on every job even
    though the resumed run repacks at a different K;
  * overflow:   --faults ensemble.queue.overflow@0 forces backpressure
    on the first submission: an explicit rejected result, with the
    other jobs unaffected.

Usage: check_ensemble_chaos.py /path/to/ensemble_serve
Exit code 0 on success; prints the first failure otherwise.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

PARTICLES = "120"
STEPS = "6"
RHS = "4"
JOBS = "4"


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def run(binary, *flags, expect_exit=0):
    cmd = [str(binary), "--particles", PARTICLES, "--phi", "0.3",
           "--steps", STEPS, "--rhs", RHS, "--jobs", JOBS, *flags]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=480)
    if expect_exit is not None and proc.returncode != expect_exit:
        fail(f"{' '.join(cmd)} exited {proc.returncode} "
             f"(expected {expect_exit}):\n{proc.stdout}\n{proc.stderr}")
    return proc


def read_results(path):
    rows = [json.loads(line) for line in
            Path(path).read_text().strip().splitlines()]
    return {row["id"]: row for row in rows}


def summary_counts(stdout):
    m = re.search(r"ensemble: served (\d+) jobs \(completed (\d+), "
                  r"evicted (\d+), rejected (\d+), timeout (\d+)\)", stdout)
    if m is None:
        fail(f"no ensemble summary line in:\n{stdout}")
    return tuple(int(g) for g in m.groups())


def main():
    if len(sys.argv) != 2:
        fail("usage: check_ensemble_chaos.py /path/to/ensemble_serve")
    binary = Path(sys.argv[1])
    tmp = Path(tempfile.mkdtemp(prefix="mrhs_ensemble_chaos_"))

    # --- baseline ----------------------------------------------------
    base_path = tmp / "baseline.jsonl"
    run(binary, "--batch", "4", "--results", str(base_path))
    baseline = read_results(base_path)
    if len(baseline) != int(JOBS):
        fail(f"baseline served {len(baseline)} jobs, expected {JOBS}")
    for job_id, row in baseline.items():
        if row["state"] != "completed" or row["rollbacks"] != 0:
            fail(f"baseline job {job_id} not a clean completion: {row}")
    print(f"ok: baseline, {len(baseline)} clean completions")

    # --- transient member fault: contained and bitwise ---------------
    chaos_path = tmp / "contained.jsonl"
    proc = run(binary, "--batch", "4", "--results", str(chaos_path),
               "--faults", "ensemble.member.rhs.nan@2")
    chaos = read_results(chaos_path)
    victims = [i for i, row in chaos.items() if row["rollbacks"] > 0]
    if victims != [3]:
        fail(f"expected exactly job 3 to roll back, got {victims}:\n"
             f"{proc.stdout}")
    if chaos[3]["rollbacks"] != 1:
        fail(f"victim should need exactly one rollback: {chaos[3]}")
    for job_id, row in chaos.items():
        if row["state"] != "completed":
            fail(f"job {job_id} did not complete under the transient "
                 f"fault: {row}")
        if row["positions_crc"] != baseline[job_id]["positions_crc"]:
            fail(f"job {job_id} trajectory diverged from baseline "
                 f"(crc {row['positions_crc']} vs "
                 f"{baseline[job_id]['positions_crc']}): containment "
                 f"must be bitwise")
    print("ok: transient fault contained to job 3, all CRCs bitwise "
          "baseline")

    # --- persistent member fault: ladder exhausts, batch survives ----
    evict_path = tmp / "evicted.jsonl"
    proc = run(binary, "--batch", "4", "--max-attempts", "1",
               "--results", str(evict_path), "--faults",
               "ensemble.member.rhs.nan@2,ensemble.member.rhs.nan@3,"
               "ensemble.member.rhs.nan@4")
    evicted = read_results(evict_path)
    if evicted[3]["state"] != "evicted":
        fail(f"job 3 should be evicted after three strikes: {evicted[3]}")
    if evicted[3]["rollbacks"] != 3:
        fail(f"eviction should cost the full ladder (3 rollbacks): "
             f"{evicted[3]}")
    for job_id in (1, 2, 4):
        row = evicted[job_id]
        if row["state"] != "completed":
            fail(f"survivor {job_id} did not complete: {row}")
        if row["positions_crc"] != baseline[job_id]["positions_crc"]:
            fail(f"survivor {job_id} perturbed by neighbor eviction "
                 f"(crc {row['positions_crc']} vs "
                 f"{baseline[job_id]['positions_crc']})")
    served, completed, evicted_n, _, _ = summary_counts(proc.stdout)
    if (served, completed, evicted_n) != (4, 3, 1):
        fail(f"eviction summary off: {proc.stdout}")
    print("ok: ladder exhausted, job 3 evicted, 3 survivors bitwise "
          "baseline")

    # --- kill mid-batch, resume: nothing lost, nothing duplicated ----
    journal = tmp / "resume.jrnl"
    proc = run(binary, "--batch", "2", "--journal", str(journal),
               "--kill-after", "1", expect_exit=9)
    if "simulated crash" not in proc.stdout:
        fail(f"kill run did not report the simulated crash:\n{proc.stdout}")
    resume_path = tmp / "resumed.jsonl"
    proc = run(binary, "--batch", "2", "--journal", str(journal),
               "--results", str(resume_path))
    if "resuming journal" not in proc.stdout:
        fail(f"second run did not resume the journal:\n{proc.stdout}")
    resumed = read_results(resume_path)
    if sorted(resumed) != [1, 2, 3, 4]:
        fail(f"resume lost or duplicated jobs: ids {sorted(resumed)}")
    lines = Path(resume_path).read_text().strip().splitlines()
    if len(lines) != 4:
        fail(f"expected exactly one final per job, got {len(lines)} lines")
    n_resumed = sum(1 for row in resumed.values() if row["resumed"])
    if n_resumed != 2:
        fail(f"expected 2 journal-resumed finals (one killed batch), "
             f"got {n_resumed}")
    for job_id, row in resumed.items():
        if row["state"] != "completed":
            fail(f"resumed job {job_id} not completed: {row}")
        if row["positions_crc"] != baseline[job_id]["positions_crc"]:
            fail(f"resumed job {job_id} diverged from baseline "
                 f"(crc {row['positions_crc']} vs "
                 f"{baseline[job_id]['positions_crc']})")
    print("ok: kill-and-resume, one final per job, all CRCs bitwise "
          "baseline")

    # --- forced queue overflow: explicit rejection -------------------
    overflow_path = tmp / "overflow.jsonl"
    proc = run(binary, "--batch", "4", "--results", str(overflow_path),
               "--faults", "ensemble.queue.overflow@0")
    if "rejected:" not in proc.stdout:
        fail(f"forced overflow produced no rejection notice:\n{proc.stdout}")
    overflow = read_results(overflow_path)
    rejected = [i for i, row in overflow.items() if row["state"] == "rejected"]
    if rejected != [1]:
        fail(f"expected job 1 rejected under forced overflow: {overflow}")
    completed = [i for i, row in overflow.items()
                 if row["state"] == "completed"]
    if sorted(completed) != [2, 3, 4]:
        fail(f"overflow must not disturb admitted jobs: {overflow}")
    print("ok: forced overflow rejected explicitly, admitted jobs served")

    # --- torn journal append: crash surfaced, replay discards tail ---
    torn_journal = tmp / "torn.jrnl"
    proc = run(binary, "--batch", "4", "--journal", str(torn_journal),
               "--faults", "ensemble.journal.torn@0", expect_exit=1)
    if "torn" not in (proc.stdout + proc.stderr):
        fail(f"torn append not surfaced as an error:\n{proc.stderr}")
    torn_path = tmp / "torn.jsonl"
    proc = run(binary, "--batch", "4", "--journal", str(torn_journal),
               "--results", str(torn_path))
    torn = read_results(torn_path)
    if len(torn) != 4 or any(r["state"] != "completed"
                             for r in torn.values()):
        fail(f"rerun over the torn journal did not serve cleanly: {torn}")
    print("ok: torn journal append fatal, rerun discards tail and serves")

    # --- unknown fault site must be refused --------------------------
    proc = run(binary, "--faults", "ensemble.nonexistent.site@0",
               expect_exit=None)
    if proc.returncode == 0:
        fail("unknown fault site accepted; chaos drills could pass "
             "vacuously")
    print("ok: unknown fault site refused")

    print("PASS: ensemble chaos drills (containment bitwise, eviction "
          "non-fatal, resume exact)")


if __name__ == "__main__":
    main()
