#!/usr/bin/env python3
"""End-to-end chaos drill through the quickstart CLI.

Requires a quickstart binary with fault injection compiled in (Debug,
a sanitizer preset, or -DMRHS_FAULTS=ON); registered as the
`check_chaos` ctest only in such builds. Drives quickstart three ways
and cross-validates:

  * baseline:  12 fault-free steps, final positions as hex floats;
  * chaos:     the same run with --faults stepper.position.nan@5 — a
    NaN coordinate injected after step 5, which is mid-chunk for
    --rhs 4 (chunk [4,8)). The run must still exit 0, report exactly
    one rollback and zero degradations (the first corruption at a
    snapshot epoch is a plain retry), and its final positions must be
    EXACTLY the baseline's — bitwise, not approximate: the rollback
    replays the counter-keyed noise stream, so a transient fault
    leaves no trace in the trajectory;
  * a schedule naming an unknown site must be refused with a nonzero
    exit and a diagnostic on stderr (a chaos run that silently arms
    nothing would pass vacuously).

Usage: check_chaos.py /path/to/quickstart
Exit code 0 on success; prints the first failure otherwise.
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

PARTICLES = "96"
STEPS = "12"
RHS = "4"
FAULT = "stepper.position.nan@5"


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def run(binary, *flags, expect_ok=True):
    cmd = [str(binary), "--particles", PARTICLES, "--phi", "0.35",
           "--steps", STEPS, "--rhs", RHS, *flags]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=240)
    if expect_ok and proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout}\n{proc.stderr}")
    return proc


def resilience_counters(stdout):
    m = re.search(r"resilience: rollbacks (\d+), degradations (\d+), "
                  r"recoveries (\d+)", stdout)
    if m is None:
        fail(f"no resilience summary line in:\n{stdout}")
    return tuple(int(g) for g in m.groups())


def read_positions(path):
    lines = Path(path).read_text().strip().splitlines()
    if len(lines) != int(PARTICLES):
        fail(f"{path}: expected {PARTICLES} position lines, got {len(lines)}")
    return lines


def main():
    if len(sys.argv) != 2:
        fail("usage: check_chaos.py /path/to/quickstart")
    binary = Path(sys.argv[1])
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory(prefix="mrhs_chaos_") as td:
        tmp = Path(td)
        base_pos = tmp / "baseline.txt"
        chaos_pos = tmp / "chaos.txt"

        # Fault-free reference run.
        proc = run(binary, "--positions-out", str(base_pos))
        if resilience_counters(proc.stdout) != (0, 0, 0):
            fail(f"baseline run reported resilience events:\n{proc.stdout}")

        # Chaos run: one NaN injected mid-chunk. Must complete, cost
        # exactly one rollback, and not descend the degradation ladder.
        proc = run(binary, "--faults", FAULT,
                   "--positions-out", str(chaos_pos))
        rollbacks, degradations, _ = resilience_counters(proc.stdout)
        if rollbacks != 1:
            fail(f"expected exactly 1 rollback, got {rollbacks}:\n"
                 f"{proc.stdout}")
        if degradations != 0:
            fail(f"transient fault must not degrade (got {degradations}):\n"
                 f"{proc.stdout}")

        # Bitwise identity: the replayed trajectory IS the baseline.
        baseline = read_positions(base_pos)
        chaos = read_positions(chaos_pos)
        mismatches = [i for i, (a, b) in enumerate(zip(baseline, chaos))
                      if a != b]
        if mismatches:
            i = mismatches[0]
            fail(f"{len(mismatches)} particles differ after rollback; "
                 f"first at index {i}:\n  baseline: {baseline[i]}\n"
                 f"  chaos:    {chaos[i]}")

        # Unknown sites are hard errors, never silently ignored.
        proc = run(binary, "--faults", "no.such.site@1", expect_ok=False)
        if proc.returncode == 0:
            fail("unknown fault site was accepted")
        if "unknown site" not in proc.stderr.lower():
            fail(f"unknown site not diagnosed on stderr:\n{proc.stderr}")

    print("OK: chaos run rolled back once and reproduced the fault-free "
          "trajectory bitwise; bad schedules rejected")


if __name__ == "__main__":
    main()
