#!/usr/bin/env bash
# Full reproduction pipeline: configure, build, test, run every
# table/figure bench, and leave the raw outputs at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "################ $b ################"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt and bench_output.txt written."
