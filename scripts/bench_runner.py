#!/usr/bin/env python3
"""Run a curated bench subset and merge their JSON sidecars into one
trajectory file (BENCH_<date>.json at the repo root by default).

Every bench binary writes a schema-versioned `mrhs-bench-report`
sidecar next to its printed table (bench/bench_common.hpp). This
runner:

  1. runs each curated bench N times (--repeat) at smoke sizes,
     pointing the sidecar at a temp path via MRHS_REPORT_OUT;
  2. validates each sidecar's schema header;
  3. merges everything into a `mrhs-bench-trajectory` document:

       {
         "schema": "mrhs-bench-trajectory", "schema_version": 1,
         "created": "YYYY-MM-DD", "git_sha": "...",
         "benches": {"<bench>": {"runs": [<report>, ...]}, ...}
       }

scripts/perf_compare.py diffs two trajectories (median across runs,
noise-aware thresholds). CI runs this at smoke sizes; the committed
BENCH_*.json files are the performance history of the repo.

Exit codes: 0 ok, 1 a bench failed, 2 a sidecar violated the schema.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA_NAME = "mrhs-bench-report"
SCHEMA_VERSION = 1
TRAJECTORY_SCHEMA = "mrhs-bench-trajectory"
TRAJECTORY_VERSION = 1

# Curated smoke set: small enough for CI, together covering GSPMV
# roofline attribution (tab02, fig02, fig07), solver phase breakdowns
# (tab06), guess construction (fig05), the matrix suite (tab01), and
# incremental assembly (abl04).
CURATED = {
    "tab01_matrices": ["--particles", "2000"],
    "tab02_spmv_baseline": ["--particles", "2000"],
    "fig02_relative_time": ["--particles", "2000", "--max_m", "32"],
    "fig05_guess_error": ["--particles", "600"],
    "fig07_tmrhs_vs_m": ["--particles", "800", "--steps", "4"],
    "tab06_timings_size": ["--sizes", "300,600,1200", "--steps", "4"],
    "abl04_incremental_assembly": ["--particles", "600", "--steps", "6"],
    "tab08_moptimal": ["--scale", "100"],
    "abl05_autotune_m": ["--particles", "500", "--steps", "24",
                         "--max_m", "12"],
    "abl06_ensemble": ["--particles", "500", "--steps", "6",
                       "--kmax", "8"],
}


def git_sha(repo: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
        return out.stdout.strip() if out.returncode == 0 else ""
    except OSError:
        return ""


def validate_report(report: dict, path: Path) -> list[str]:
    """Return schema violations (empty list when clean)."""
    errors = []
    if report.get("schema") != SCHEMA_NAME:
        errors.append(f"{path}: schema is {report.get('schema')!r}, "
                      f"want {SCHEMA_NAME!r}")
    if report.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version is "
                      f"{report.get('schema_version')!r}, "
                      f"want {SCHEMA_VERSION}")
    for key, typ in (("bench", str), ("phases", list), ("kernels", list),
                     ("values", dict), ("machine", dict)):
        if not isinstance(report.get(key), typ):
            errors.append(f"{path}: missing or mistyped key {key!r}")
    for k in report.get("kernels", []):
        for field in ("name", "bytes", "flops", "seconds",
                      "gbytes_per_sec", "pct_of_roofline"):
            if field not in k:
                errors.append(f"{path}: kernel entry missing {field!r}")
                break
    return errors


def run_bench(bench_dir: Path, name: str, extra_args: list[str],
              sidecar: Path, sha: str, timeout: float) -> dict | None:
    exe = bench_dir / name
    if not exe.exists():
        print(f"bench_runner: SKIP {name} (not built at {exe})")
        return None
    env = dict(os.environ)
    env["MRHS_REPORT_OUT"] = str(sidecar)
    if sha:
        env["MRHS_GIT_SHA"] = sha
    proc = subprocess.run([str(exe), *extra_args], env=env,
                          capture_output=True, text=True, timeout=timeout)
    if proc.returncode != 0:
        print(f"bench_runner: FAIL {name} (exit {proc.returncode})")
        sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        raise RuntimeError(name)
    if not sidecar.exists():
        raise ValueError(f"{name} wrote no sidecar at {sidecar}")
    with open(sidecar) as f:
        return json.load(f)


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", type=Path,
                        default=repo / "build" / "bench",
                        help="directory holding the bench executables")
    parser.add_argument("--out", type=Path, default=None,
                        help="trajectory output "
                             "(default: BENCH_<date>.json at repo root)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per bench (perf_compare uses the median)")
    parser.add_argument("--only", action="append", default=None,
                        help="run only this bench (repeatable)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-run timeout in seconds")
    args = parser.parse_args()

    date = datetime.date.today().isoformat()
    out = args.out or repo / f"BENCH_{date}.json"
    sha = git_sha(repo)

    selected = {k: v for k, v in CURATED.items()
                if args.only is None or k in args.only}
    if not selected:
        print(f"bench_runner: nothing selected from {sorted(CURATED)}")
        return 1

    trajectory: dict = {
        "schema": TRAJECTORY_SCHEMA,
        "schema_version": TRAJECTORY_VERSION,
        "created": date,
        "git_sha": sha,
        "benches": {},
    }
    schema_errors: list[str] = []
    failed = False
    with tempfile.TemporaryDirectory(prefix="mrhs_bench_") as tmp:
        for name, extra in selected.items():
            runs = []
            for rep in range(args.repeat):
                sidecar = Path(tmp) / f"{name}.{rep}.json"
                try:
                    report = run_bench(args.bench_dir, name, extra, sidecar,
                                       sha, args.timeout)
                except (RuntimeError, ValueError,
                        subprocess.TimeoutExpired) as err:
                    print(f"bench_runner: {name} run {rep} failed: {err}")
                    failed = True
                    break
                if report is None:  # not built: skip the whole bench
                    break
                schema_errors += validate_report(report, sidecar)
                runs.append(report)
            if runs:
                trajectory["benches"][name] = {"runs": runs}
                print(f"bench_runner: {name}: {len(runs)} run(s) merged")

    if schema_errors:
        for e in schema_errors:
            print(f"bench_runner: SCHEMA: {e}")
        return 2
    if not trajectory["benches"]:
        print("bench_runner: no benches produced reports")
        return 1

    with open(out, "w") as f:
        json.dump(trajectory, f, indent=1)
        f.write("\n")
    print(f"bench_runner: wrote {out} "
          f"({len(trajectory['benches'])} benches)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
