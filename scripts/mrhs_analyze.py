#!/usr/bin/env python3
"""mrhs_analyze: semantic static analysis for the repo's invariants.

Where scripts/mrhs_lint.py enforces lexical, line-local rules, this tool
checks *semantic* invariants that need scope, capture, declaration, and
statement structure: the properties that keep rollback/resume bitwise
reproducible, parallel regions race-free, and error statuses propagated.

Registered as the `mrhs_analyze` ctest target (repo scan against the
committed baseline) and `mrhs_analyze_selftest` (fixture battery +
regex-lint cross-check).

Frontends
---------
The analyzer is built around a fact model (declarations, call
statements, lambda captures/writes, loop nesting, nondeterminism
sources) that checkers consume. Two frontends produce the facts:

* ``clang``: libclang (clang.cindex) driven by compile_commands.json.
  Exact types: return types for status propagation, container types for
  ordering checks, statement context for discard detection.
* ``token``: a built-in C++ lexer + scope/capture parser, always
  available. Conservative where it cannot resolve types (e.g. a call
  name declared with more than one return type across the repo is never
  flagged), so it under-reports rather than false-positives.

``--frontend auto`` (the default) uses clang when importable and falls
back to token otherwise; lexical facts (macros, pragmas, suppression
comments) always come from the token layer, exactly as clang-tidy
checks use lexer callbacks for macro-level work.

Rules
-----
determinism
    In src/core|sparse|solver|sd|cluster (and src/perf for the ordering
    sub-rules): (a) iteration over unordered containers feeding
    floating-point accumulation — the sum depends on hash-table layout,
    i.e. on pointer values and allocation history, breaking bitwise
    reproducibility; (b) wall-clock / ambient randomness (rand, srand,
    std::random_device, time(), clock(), gettimeofday,
    steady/system/high_resolution_clock) outside the counter-keyed
    StreamRng — src/perf is exempt from this sub-rule because measuring
    time is its purpose; (c) address-dependent ordering: ordered
    containers keyed on pointers, whose iteration order varies run to
    run with ASLR and allocation order.

parallel-capture
    Inside lambda bodies passed to util::parallel_for /
    util::parallel_regions: a write (assignment, compound assignment,
    increment/decrement, or a mutating container call like push_back)
    through a by-reference capture of a shared variable is a data race
    unless the variable is std::atomic, the write follows a lock_guard/
    scoped_lock/unique_lock in the body, or the access is indexed by
    the loop induction variable / region tid (disjoint slabs). This is
    the static complement of the tsan preset: TSan only sees the
    interleavings that execute.

status-propagation
    Every call to a function returning util::Status / core::Status /
    SolveStatus or a result struct carrying one (\\w*Result, \\w*Status)
    must be consumed, branched on, or forwarded. A bare expression
    statement — including a (void) cast — silently drops breakdown,
    corruption, or I/O failure. Replaces the regex
    `solve-status-discarded` rule, whose fixed four-name list this
    generalizes to every declaration the frontend can see.

obs-placement
    (a) The name argument of every OBS_* macro must be a string literal
    (the handle is cached per call site; a computed name records under
    whatever the first execution passed); (b) no OBS_* inside per-row
    kernel inner loops (loop depth >= 2 in src/sparse|src/dense, or any
    loop in a block_row_* kernel): one macro in the m-loop turns the
    zero-overhead claim into a per-element branch + potential handle
    lookup.

no-raw-omp
    `#pragma omp parallel` outside util/parallel.hpp bypasses the
    threading backend abstraction (the region would not run — or be
    TSan-checked — on the std::thread backend). AST/token port of the
    regex rule of the same intent; the regex version remains in
    mrhs_lint as the fallback cross-check.

Suppressions
------------
``// mrhs-analyze-ok(rule[,rule]): reason`` on the finding line, or on
its own line directly above, suppresses the named rules for that line.
Suppressions are for *documented* intentional exceptions (telemetry
clocks, benign races); the reason text is mandatory by convention and
reviewed, not parsed.

Output
------
Human ``file:line: [rule] message`` plus an optional machine-readable
findings document (``--json``), schema ``mrhs-analyze-findings`` v1 —
versioned like ``mrhs-bench-report``. The committed baseline
(scripts/mrhs_analyze_baseline.json) holds fingerprints of accepted
findings; the exit code is 1 only for non-baselined findings.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_NAME = "mrhs-analyze-findings"
SCHEMA_VERSION = 1
SKIP = 77  # ctest SKIP_RETURN_CODE for an explicitly requested,
           # unavailable frontend

# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RULES: dict[str, str] = {
    "determinism": "no unordered-iteration FP accumulation, wall-clock/"
                   "ambient RNG, or pointer-keyed ordering in numeric code",
    "parallel-capture": "no unguarded writes through by-ref captures in "
                        "util::parallel_for/parallel_regions lambdas",
    "status-propagation": "every Status/SolveStatus-carrying return value "
                          "is consumed, branched on, or forwarded",
    "obs-placement": "OBS_* names are literals and never sit in per-row "
                     "kernel inner loops",
    "no-raw-omp": "no `#pragma omp parallel` outside util/parallel.hpp "
                  "(threading backend abstraction)",
}

# Scope tables (matched against the *virtual* path, so fixtures can
# impersonate any subtree via their `as=` directive).
CLOCK_DIRS = ("src/core/", "src/sparse/", "src/solver/", "src/sd/",
              "src/cluster/")
ORDER_DIRS = CLOCK_DIRS + ("src/perf/",)
KERNEL_DIRS = ("src/sparse/", "src/dense/")

OBS_MACROS_ARG1 = ("OBS_COUNTER_ADD", "OBS_GAUGE_SET",
                   "OBS_HISTOGRAM_OBSERVE", "OBS_SPAN", "OBS_INSTANT")
OBS_MACROS_ARG2 = ("OBS_SPAN_VAR",)
OBS_MACROS = OBS_MACROS_ARG1 + OBS_MACROS_ARG2

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
ORDERED_TYPES = {"set", "map", "multiset", "multimap"}
CLOCK_IDS = {"steady_clock", "system_clock", "high_resolution_clock",
             "random_device"}
NONDET_CALLS = {"rand", "srand", "gettimeofday", "time", "clock",
                "localtime", "mktime"}
MUTATING_METHODS = {"push_back", "emplace_back", "insert", "emplace",
                    "erase", "clear", "resize", "pop_back", "push_front",
                    "append", "assign"}
LOCK_TYPES = {"lock_guard", "scoped_lock", "unique_lock"}
PARALLEL_FNS = {"parallel_for", "parallel_regions"}

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "break", "continue", "return", "goto", "try", "catch", "throw",
    "new", "delete", "sizeof", "alignof", "alignas", "static_assert",
    "using", "namespace", "template", "typename", "class", "struct",
    "enum", "union", "public", "private", "protected", "operator",
    "const", "constexpr", "consteval", "constinit", "static", "inline",
    "extern", "friend", "virtual", "explicit", "mutable", "volatile",
    "auto", "void", "bool", "char", "int", "long", "short", "float",
    "double", "signed", "unsigned", "true", "false", "nullptr", "this",
    "noexcept", "override", "final", "co_return", "co_await", "co_yield",
    "requires", "concept", "decltype", "typedef",
}

# Tokens that can form (part of) a declaration's type.
TYPE_KEYWORDS = {"auto", "const", "constexpr", "static", "unsigned",
                 "signed", "long", "short", "int", "double", "float",
                 "bool", "char", "void"}

OMP_PARALLEL_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")
SUPPRESS_RE = re.compile(r"mrhs-analyze-ok\(([^)]*)\)")
FIXTURE_AS_RE = re.compile(r"mrhs-analyze-fixture:\s*as=(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*expect:\s*([\w-]+)(?::(\d+))?")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    fingerprint: str = ""
    suppressed: bool = False

    def key(self) -> tuple:
        return (self.file, self.line, self.rule)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str  # id | num | str | chr | op
    text: str
    line: int


_MULTI_OPS = ("<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=",
              "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=",
              ">=", "&&", "||", "<<", ">>")


def tokenize(text: str) -> tuple[list[Tok], list[tuple[int, str]]]:
    """C++ tokens (comments and string/char bodies removed) plus the
    comment list [(line, text)] for suppression/directive parsing."""
    toks: list[Tok] = []
    comments: list[tuple[int, str]] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j]))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            body = text[i:j]
            comments.append((line, body))
            line += body.count("\n")
            i = j
            continue
        if c == '"' or (c == "'" and not (toks and toks[-1].kind
                                          in ("id", "num"))):
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q or text[j] == "\n":
                    break
                j += 1
            toks.append(Tok("str" if q == '"' else "chr", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":  # digit separator (10'000)
            i += 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                toks.append(Tok("op", op, line))
                i += len(op)
                break
        else:
            toks.append(Tok("op", c, line))
            i += 1
    return toks, comments


def match_group(toks: list[Tok], i: int, open_: str, close: str) -> int:
    """Index just past the token matching toks[i] == open_. Returns
    len(toks) when unbalanced."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def skip_angle(toks: list[Tok], i: int) -> int:
    """Skip a template argument list starting at toks[i] == '<'.
    Bails (returns i) on ';' — a comparison, not a template."""
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{"):
            return i
        j += 1
    return i


# ---------------------------------------------------------------------------
# Fact model
# ---------------------------------------------------------------------------

@dataclass
class Write:
    name: str
    line: int
    pos: int                       # token index inside the lambda body
    index_tokens: set[str]         # identifiers inside [] on the lvalue path
    kind: str                      # assign | incdec | mutate-call


@dataclass
class ParallelLambda:
    fn: str                        # parallel_for | parallel_regions
    line: int
    default_capture: str           # '', '&', '='
    ref_captures: set[str]
    val_captures: set[str]
    params: set[str]
    induction: str | None
    locals: set[str]
    writes: list[Write]
    lock_pos: int | None


@dataclass
class FileFacts:
    path: Path
    virtual_path: str              # repo-relative path used for scoping
    text: str
    toks: list[Tok] = field(default_factory=list)
    comments: list[tuple[int, str]] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    # semantic facts
    fn_decls: list[tuple[str, str]] = field(default_factory=list)  # (name, ret)
    discard_calls: list[tuple[str, int, bool]] = field(default_factory=list)
    unordered_iters: list[tuple[str, int, bool]] = field(default_factory=list)
    ptr_ordered: list[int] = field(default_factory=list)
    nondet: list[tuple[str, int]] = field(default_factory=list)
    par_lambdas: list[ParallelLambda] = field(default_factory=list)
    obs_sites: list[tuple[str, int, bool, int, str]] = field(
        default_factory=list)  # (macro, line, literal, loop_depth, fn)
    omp_lines: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Token frontend
# ---------------------------------------------------------------------------

class TokenFrontend:
    """Always-available frontend: lexical + structural analysis with a
    conservative, declaration-derived type model."""

    name = "token"

    def index_file(self, path: Path, virtual_path: str) -> FileFacts:
        text = path.read_text()
        facts = FileFacts(path=path, virtual_path=virtual_path, text=text)
        facts.toks, facts.comments = tokenize(text)
        self._collect_suppressions(facts)
        self._collect_omp(facts)
        self._collect_nondet(facts)
        self._collect_decls_and_containers(facts)
        self._collect_discard_calls(facts)
        self._collect_obs_sites(facts)
        self._collect_parallel_lambdas(facts)
        return facts

    # -- lexical facts --------------------------------------------------

    def _collect_suppressions(self, facts: FileFacts) -> None:
        code_lines = {t.line for t in facts.toks}
        for line, comment in facts.comments:
            m = SUPPRESS_RE.search(comment)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if line in code_lines:
                target = line
            else:
                # Standalone comment: bind to the next code-bearing
                # line within a short window, so a blank line or a
                # continuation comment between the suppression and the
                # flagged statement does not orphan it silently.
                target = next((ln for ln in range(line + 1, line + 4)
                               if ln in code_lines), line + 1)
            facts.suppressions.setdefault(target, set()).update(rules)

    def _collect_omp(self, facts: FileFacts) -> None:
        for lineno, raw in enumerate(facts.text.splitlines(), 1):
            if OMP_PARALLEL_RE.search(raw.split("//")[0]):
                facts.omp_lines.append(lineno)

    def _collect_nondet(self, facts: FileFacts) -> None:
        toks = facts.toks
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.text in CLOCK_IDS:
                facts.nondet.append((t.text, t.line))
                continue
            if t.text in NONDET_CALLS and nxt == "(":
                if prev in (".", "->"):
                    continue  # member call on a repo type, not libc
                if prev == "::" and (i < 2 or toks[i - 2].text != "std"):
                    continue  # SomeClass::time(...), not std::time
                facts.nondet.append((t.text, t.line))

    def _collect_obs_sites(self, facts: FileFacts) -> None:
        toks = facts.toks
        define_lines = {
            lineno for lineno, raw in enumerate(facts.text.splitlines(), 1)
            if re.match(r"\s*#\s*define\b", raw)}
        loop_stack: list[bool] = []      # True entries are loop bodies
        fn_stack: list[str] = []
        pending: str | None = None       # brace context decided at '('…')'
        pending_fn: str | None = None
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in ("for", "while"):
                j = i + 1
                if j < n and toks[j].text == "(":
                    j = match_group(toks, j, "(", ")")
                if j < n and toks[j].text == "{":
                    pending = "loop"
                i += 1
                continue
            if t.text == "(" and i > 0 and toks[i - 1].kind == "id" \
                    and toks[i - 1].text not in CPP_KEYWORDS:
                j = match_group(toks, i, "(", ")")
                # specifier tail (const/noexcept/...) before a body
                k = j
                while k < n and toks[k].kind == "id" \
                        and toks[k].text in ("const", "noexcept", "override",
                                             "final"):
                    k += 1
                if k < n and toks[k].text == "{":
                    pending_fn = toks[i - 1].text
                i += 1
                continue
            if t.text == "{":
                loop_stack.append(pending == "loop")
                fn_stack.append(pending_fn or (fn_stack[-1] if fn_stack
                                               else ""))
                pending = None
                pending_fn = None
                i += 1
                continue
            if t.text == "}":
                if loop_stack:
                    loop_stack.pop()
                if fn_stack:
                    fn_stack.pop()
                i += 1
                continue
            if t.kind == "id" and t.text in OBS_MACROS \
                    and i + 1 < n and toks[i + 1].text == "(" \
                    and t.line not in define_lines:
                depth1 = i + 2
                arg = toks[depth1] if depth1 < n else None
                if t.text in OBS_MACROS_ARG2 and arg is not None:
                    # OBS_SPAN_VAR(var, "name"): skip to after the comma.
                    j = i + 2
                    pd = 1
                    while j < n and pd > 0:
                        if toks[j].text == "(":
                            pd += 1
                        elif toks[j].text == ")":
                            pd -= 1
                        elif toks[j].text == "," and pd == 1:
                            arg = toks[j + 1] if j + 1 < n else None
                            break
                        j += 1
                literal = arg is not None and arg.kind == "str"
                depth = sum(1 for is_loop in loop_stack if is_loop)
                fn = fn_stack[-1] if fn_stack else ""
                facts.obs_sites.append((t.text, t.line, literal, depth, fn))
            i += 1

    # -- declarations, containers, nondet types -------------------------

    def _collect_decls_and_containers(self, facts: FileFacts) -> None:
        toks = facts.toks
        n = len(toks)
        unordered_vars: set[str] = set()
        unordered_aliases: set[str] = set(UNORDERED_TYPES)

        # using Alias = ... unordered_map< ... > ...;
        i = 0
        while i < n:
            if toks[i].kind == "id" and toks[i].text == "using" \
                    and i + 2 < n and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "=":
                j = i + 3
                while j < n and toks[j].text != ";":
                    if toks[j].kind == "id" and toks[j].text in UNORDERED_TYPES:
                        unordered_aliases.add(toks[i + 1].text)
                        break
                    j += 1
            i += 1

        # Variable declarations of unordered containers + pointer-keyed
        # ordered containers.
        i = 0
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in unordered_aliases:
                j = i + 1
                if j < n and toks[j].text == "<":
                    j = skip_angle(toks, j)
                while j < n and toks[j].text in ("*", "&", "const"):
                    j += 1
                if j < n and toks[j].kind == "id" \
                        and toks[j].text not in CPP_KEYWORDS \
                        and j + 1 < n and toks[j + 1].text in (";", "=", "{",
                                                               "("):
                    unordered_vars.add(toks[j].text)
            if t.kind == "id" and t.text in ORDERED_TYPES and i >= 2 \
                    and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "std" \
                    and i + 1 < n and toks[i + 1].text == "<":
                j = i + 1
                end = skip_angle(toks, j)
                # first template argument: up to the first top-level ','
                depth = 0
                first_arg: list[str] = []
                for k in range(j + 1, end - 1):
                    txt = toks[k].text
                    if txt in ("<", "("):
                        depth += 1
                    elif txt in (">", ")"):
                        depth -= 1
                    elif txt == "," and depth == 0:
                        break
                    first_arg.append(txt)
                if "*" in first_arg:
                    facts.ptr_ordered.append(t.line)
            i += 1

        # Range-for / iterator loops over unordered containers, with a
        # floating-point-accumulation body test.
        i = 0
        while i < n:
            if toks[i].kind == "id" and toks[i].text == "for" \
                    and i + 1 < n and toks[i + 1].text == "(":
                close = match_group(toks, i + 1, "(", ")")
                header = toks[i + 2:close - 1]
                over: str | None = None
                colon = next((k for k, h in enumerate(header)
                              if h.text == ":"), None)
                if colon is not None:
                    rng = [h.text for h in header[colon + 1:]]
                    over = next((x for x in rng if x in unordered_vars), None)
                else:
                    htext = [h.text for h in header]
                    for k, h in enumerate(htext):
                        if h in unordered_vars and k + 2 < len(htext) \
                                and htext[k + 1] == "." \
                                and htext[k + 2] in ("begin", "cbegin"):
                            over = h
                            break
                if over is not None and close < n and toks[close].text == "{":
                    body_end = match_group(toks, close, "{", "}")
                    body = toks[close:body_end]
                    accum = any(b.text in ("+=", "-=", "*=", "/=")
                                for b in body)
                    if not accum:
                        btext = [b.text for b in body]
                        for k in range(len(btext) - 3):
                            if btext[k + 1] == "=" and btext[k + 3] in \
                                    ("+", "-", "*") \
                                    and btext[k] == btext[k + 2]:
                                accum = True
                                break
                    facts.unordered_iters.append(
                        (over, toks[i].line, accum))
            i += 1

        # Function declarations (name, final-return-type token): the
        # conservative type model for status-propagation.
        boundary = {";", "{", "}", ":"}
        stmt_start = 0
        i = 0
        while i < n:
            t = toks[i]
            if t.text in boundary:
                stmt_start = i + 1
                i += 1
                continue
            if t.text == "(" and i > stmt_start:
                prefix = toks[stmt_start:i]
                decl = self._parse_decl_prefix(prefix)
                if decl is not None:
                    close = match_group(toks, i, "(", ")")
                    nxt = toks[close].text if close < n else ""
                    if nxt in (";", "{", "const", "noexcept", "override",
                               "final", "="):
                        facts.fn_decls.append(decl)
                # Whether or not it was a declaration, skip the parens so
                # call arguments don't open new pseudo-statements.
                i = match_group(toks, i, "(", ")")
                stmt_start = i
                continue
            i += 1

    @staticmethod
    def _parse_decl_prefix(prefix: list[Tok]) -> tuple[str, str] | None:
        """`[specifiers] TYPE [<...>] [*&] [Qual::]* NAME` -> (NAME, TYPE).
        None when the prefix does not look like a declaration."""
        toks = [t for t in prefix
                if not (t.kind == "id" and t.text in
                        ("inline", "static", "constexpr", "consteval",
                         "virtual", "explicit", "friend", "extern",
                         "nodiscard", "maybe_unused"))
                and t.text not in ("[", "]")]
        if len(toks) < 2:
            return None
        if any(t.text in ("=", "return", "throw", "new", "delete", ",",
                          "?", "+", "-", "/", "!", "||", "&&")
               for t in toks):
            return None
        # trailing qualified chain -> NAME
        k = len(toks) - 1
        if toks[k].kind != "id" or toks[k].text in CPP_KEYWORDS:
            return None
        name = toks[k].text
        k -= 1
        while k >= 1 and toks[k].text == "::" and toks[k - 1].kind == "id":
            k -= 2
        # skip pointer/ref/const between type and name
        while k >= 0 and toks[k].text in ("*", "&", "&&", "const"):
            k -= 1
        if k < 0:
            return None
        # skip a template argument list backwards
        if toks[k].text == ">":
            depth = 0
            while k >= 0:
                if toks[k].text == ">":
                    depth += 1
                elif toks[k].text == "<":
                    depth -= 1
                    if depth == 0:
                        k -= 1
                        break
                k -= 1
        if k < 0 or toks[k].kind != "id":
            return None
        ret = toks[k].text
        if ret in CPP_KEYWORDS and ret not in ("bool", "void", "int",
                                               "double", "float", "auto",
                                               "char", "long", "unsigned"):
            return None
        if ret == name:
            return None  # constructor
        return (name, ret)

    # -- call statements -------------------------------------------------

    def _collect_discard_calls(self, facts: FileFacts) -> None:
        toks = facts.toks
        n = len(toks)
        i = 0
        stmt_start = 0
        depth = 0
        while i < n:
            t = toks[i]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            if depth == 0 and t.text in (";", "{", "}"):
                stmt = toks[stmt_start:i]
                if t.text == ";" and stmt:
                    hit = self._match_call_statement(stmt)
                    if hit is not None:
                        facts.discard_calls.append(hit)
                stmt_start = i + 1
            i += 1

    @staticmethod
    def _match_call_statement(stmt: list[Tok]) -> tuple[str, int, bool] | None:
        """A statement that is exactly `[(void)] chain(...);` where chain
        is id (:: id | . id | -> id | (...) | [...])*, ending in a call.
        Returns (callee, line, void_cast)."""
        void_cast = False
        k = 0
        if len(stmt) >= 3 and stmt[0].text == "(" and stmt[1].text == "void" \
                and stmt[2].text == ")":
            void_cast = True
            k = 3
        if k >= len(stmt):
            return None
        first = stmt[k]
        if first.kind != "id" or first.text in CPP_KEYWORDS:
            return None
        callee = first.text
        line = first.line
        k += 1
        ends_with_call = False
        n = len(stmt)
        while k < n:
            t = stmt[k].text
            if t in ("::", ".", "->"):
                k += 1
                if k >= n or stmt[k].kind != "id":
                    return None
                callee = stmt[k].text
                line = stmt[k].line
                ends_with_call = False
                k += 1
                continue
            if t == "(":
                k = match_group(stmt, k, "(", ")")
                ends_with_call = True
                continue
            if t == "[":
                k = match_group(stmt, k, "[", "]")
                ends_with_call = False
                continue
            return None
        if not ends_with_call:
            return None
        return (callee, line, void_cast)

    # -- parallel lambdas -----------------------------------------------

    def _collect_parallel_lambdas(self, facts: FileFacts) -> None:
        toks = facts.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in PARALLEL_FNS:
                continue
            if i + 1 >= n or toks[i + 1].text != "(":
                continue
            close = match_group(toks, i + 1, "(", ")")
            args = toks[i + 2:close - 1]
            for lam in self._extract_lambdas(args, t.text):
                facts.par_lambdas.append(lam)

    def _extract_lambdas(self, args: list[Tok],
                         fn: str) -> list[ParallelLambda]:
        out: list[ParallelLambda] = []
        depth = 0
        k = 0
        n = len(args)
        while k < n:
            t = args[k]
            if t.text in ("(", "{"):
                depth += 1
            elif t.text in (")", "}"):
                depth -= 1
            elif t.text == "[" and depth == 0 and \
                    (k == 0 or args[k - 1].text in (",", "(")):
                lam = self._parse_lambda(args, k, fn)
                if lam is not None:
                    out.append(lam[0])
                    k = lam[1]
                    continue
            k += 1
        return out

    def _parse_lambda(self, toks: list[Tok], i: int,
                      fn: str) -> tuple[ParallelLambda, int] | None:
        cap_end = match_group(toks, i, "[", "]")
        caps = toks[i + 1:cap_end - 1]
        default_cap = ""
        ref_caps: set[str] = set()
        val_caps: set[str] = set()
        k = 0
        while k < len(caps):
            t = caps[k]
            if t.text == "&":
                if k + 1 < len(caps) and caps[k + 1].kind == "id":
                    ref_caps.add(caps[k + 1].text)
                    k += 2
                else:
                    default_cap = "&"
                    k += 1
            elif t.text == "=":
                default_cap = "="
                k += 1
            elif t.kind == "id":
                val_caps.add(t.text)
                k += 1
            else:
                k += 1
        j = cap_end
        params: list[str] = []
        if j < len(toks) and toks[j].text == "(":
            pend = match_group(toks, j, "(", ")")
            ptoks = toks[j + 1:pend - 1]
            depth = 0
            current: list[Tok] = []
            for p in ptoks + [Tok("op", ",", 0)]:
                if p.text in ("<", "("):
                    depth += 1
                elif p.text in (">", ")"):
                    depth -= 1
                if p.text == "," and depth == 0:
                    ids = [c.text for c in current if c.kind == "id"
                           and c.text not in CPP_KEYWORDS]
                    if ids:
                        params.append(ids[-1])
                    current = []
                else:
                    current.append(p)
            j = pend
        while j < len(toks) and toks[j].text != "{":
            if toks[j].text in (",", ")", ";"):
                return None
            j += 1
        if j >= len(toks):
            return None
        body_end = match_group(toks, j, "{", "}")
        body = toks[j + 1:body_end - 1]
        lam = ParallelLambda(
            fn=fn, line=toks[i].line, default_capture=default_cap,
            ref_captures=ref_caps, val_captures=val_caps,
            params=set(params), induction=params[0] if params else None,
            locals=self._body_locals(body), writes=self._body_writes(body),
            lock_pos=next((k for k, b in enumerate(body)
                           if b.kind == "id" and b.text in LOCK_TYPES), None))
        return lam, body_end

    @staticmethod
    def _body_locals(body: list[Tok]) -> set[str]:
        """Names declared inside the lambda body (incl. for-init and
        range-for variables)."""
        locals_: set[str] = set()
        boundary = {";", "{", "}"}
        stmt_start = 0
        n = len(body)
        i = 0
        while i <= n:
            at_boundary = i == n or body[i].text in boundary or \
                (body[i].text == "(" and i > stmt_start
                 and body[stmt_start].text == "for")
            if not at_boundary:
                i += 1
                continue
            stmt = body[stmt_start:i]
            # range-for header: for (decl : range)
            if stmt and stmt[0].text == "for" and i < n \
                    and body[i].text == "(":
                close = match_group(body, i, "(", ")")
                header = body[i + 1:close - 1]
                colon = next((k for k, h in enumerate(header)
                              if h.text == ":"), None)
                scan = header[:colon] if colon is not None else header
                stop = next((k for k, h in enumerate(scan)
                             if h.text in ("=", ";")), len(scan))
                scan_ids = [h.text for h in scan[:stop] if h.kind == "id"]
                names = [t for t in scan_ids if t not in CPP_KEYWORDS]
                typeish = [t for t in scan_ids
                           if t in TYPE_KEYWORDS or t not in CPP_KEYWORDS]
                if names and (colon is not None or len(typeish) >= 2):
                    locals_.add(names[-1])
                i = close
                stmt_start = close
                continue
            # plain declaration statement: TYPE... NAME ( = | ; | { )
            stop = next((k for k, s in enumerate(stmt)
                         if s.text in ("=", "{")), len(stmt))
            head = stmt[:stop]
            head_ids = [h for h in head if h.kind == "id"]
            names = [h.text for h in head_ids
                     if h.text not in CPP_KEYWORDS]
            typeish = [h.text for h in head_ids
                       if h.text in TYPE_KEYWORDS or
                       h.text not in CPP_KEYWORDS]
            if len(typeish) >= 2 and names and stmt and \
                    stmt[0].text not in ("if", "while", "return", "switch",
                                         "do", "else", "case", "break",
                                         "continue", "delete", "throw") and \
                    not any(s.text in ("+=", "-=", "*=", "/=", "==", "<",
                                       ">", "(", ".", "->")
                            for s in head):
                locals_.add(names[-1])
            i += 1
            stmt_start = i
        return locals_

    @staticmethod
    def _body_writes(body: list[Tok]) -> list[Write]:
        writes: list[Write] = []
        n = len(body)
        i = 0
        while i < n:
            t = body[i]
            if t.kind != "id" or t.text in CPP_KEYWORDS:
                i += 1
                continue
            # lvalue chain: NAME ([idx])* (. member ([idx])*)* — stop at
            # the first operator that tells us what this expression is.
            base = t.text
            line = t.line
            pos = i
            index_tokens: set[str] = set()
            k = i + 1
            last_member: str | None = None
            while k < n:
                if body[k].text == "[":
                    end = match_group(body, k, "[", "]")
                    index_tokens.update(b.text for b in body[k + 1:end - 1]
                                        if b.kind == "id")
                    k = end
                    last_member = None
                    continue
                if body[k].text in (".", "->"):
                    if k + 1 < n and body[k + 1].kind == "id":
                        last_member = body[k + 1].text
                        k += 2
                        continue
                    break
                break
            if k < n:
                op = body[k].text
                if op in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                          "^=", "<<=", ">>=") and op != "==":
                    writes.append(Write(base, line, pos, index_tokens,
                                        "assign"))
                    i = k + 1
                    continue
                if op in ("++", "--"):
                    writes.append(Write(base, line, pos, index_tokens,
                                        "incdec"))
                    i = k + 1
                    continue
                if op == "(" and last_member in MUTATING_METHODS:
                    writes.append(Write(base, line, pos, index_tokens,
                                        "mutate-call"))
                    i = match_group(body, k, "(", ")")
                    continue
            # prefix ++/--
            if i > 0 and body[i - 1].text in ("++", "--") and not index_tokens:
                writes.append(Write(base, line, pos, set(), "incdec"))
            i = k if k > i else i + 1
        return writes


# ---------------------------------------------------------------------------
# Clang frontend (libclang refinement)
# ---------------------------------------------------------------------------

def load_cindex():
    """Import clang.cindex and verify a loadable libclang. Returns the
    module or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        import glob
        for cand in sorted(glob.glob("/usr/lib/llvm-*/lib/libclang.so*") +
                           glob.glob("/usr/lib/*/libclang.so*") +
                           glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*"),
                           reverse=True):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


class ClangFrontend(TokenFrontend):
    """libclang-backed frontend: overrides the type-dependent facts
    (declaration return types, discarded-call detection, unordered
    iteration) with exact AST answers. Lexical facts (macros, pragmas,
    suppressions, capture lists) stay on the token layer — macros are
    expanded before the AST exists, so that is where they are visible.
    Falls back to the token answer per-file on any parse failure."""

    name = "clang"

    STATUS_RE = re.compile(r"(?:\b\w*Status\b|\b\w*Result\b)")

    def __init__(self, cindex, compile_db: Path | None):
        self.cindex = cindex
        self.compile_db = compile_db
        self.index = cindex.Index.create()

    def index_file(self, path: Path, virtual_path: str) -> FileFacts:
        facts = super().index_file(path, virtual_path)
        try:
            args = ["-std=c++20", "-xc++"]
            if self.compile_db is not None:
                import mrhs_compiledb
                db_args = mrhs_compiledb.compile_args(self.compile_db,
                                                      str(path))
                if db_args:
                    args = db_args
            tu = self.index.parse(str(path), args=args)
        except Exception as exc:  # pragma: no cover - environment dependent
            print(f"mrhs_analyze: clang parse failed for {path}: {exc}; "
                  f"token facts kept", file=sys.stderr)
            return facts
        try:
            self._refine(facts, tu, path)
        except Exception as exc:  # pragma: no cover - environment dependent
            print(f"mrhs_analyze: clang walk failed for {path}: {exc}; "
                  f"token facts kept", file=sys.stderr)
        return facts

    def _refine(self, facts: FileFacts, tu, path: Path) -> None:
        ck = self.cindex.CursorKind
        decls: list[tuple[str, str]] = []
        discards: list[tuple[str, int, bool]] = []
        unordered: list[tuple[str, int, bool]] = []

        def in_main_file(cursor) -> bool:
            loc = cursor.location
            return loc.file is not None and \
                Path(str(loc.file)).resolve() == path.resolve()

        def returns_status(result_type) -> bool:
            return bool(self.STATUS_RE.search(result_type.spelling))

        cast_kinds = {ck.CSTYLE_CAST_EXPR}
        for attr in ("CXX_STATIC_CAST_EXPR", "CXX_FUNCTIONAL_CAST_EXPR"):
            if hasattr(ck, attr):  # pragma: no branch - version dependent
                cast_kinds.add(getattr(ck, attr))

        def unwrap_call(cursor, void_cast, depth=0):
            """Looks through statement-level wrappers — (void)/static_cast
            casts, UNEXPOSED_EXPR (ExprWithCleanups, implicit casts) — to
            the underlying CALL_EXPR. An expression statement's value is
            discarded whatever wraps it; a cast whose result type is void
            additionally marks the discard as explicit."""
            if cursor.kind == ck.CALL_EXPR:
                return cursor, void_cast
            if depth < 8 and (cursor.kind in cast_kinds or
                              cursor.kind == ck.UNEXPOSED_EXPR):
                if cursor.kind in cast_kinds and \
                        cursor.type.spelling == "void":
                    void_cast = True
                kids = list(cursor.get_children())
                if kids:
                    return unwrap_call(kids[-1], void_cast, depth + 1)
            return None, void_cast

        def walk(cursor, parent_kind):
            for child in cursor.get_children():
                kind = child.kind
                if kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                            ck.FUNCTION_TEMPLATE):
                    rt = child.result_type.spelling.split("::")[-1]
                    decls.append((child.spelling, rt.split("<")[0].strip()))
                if parent_kind == ck.COMPOUND_STMT and in_main_file(child):
                    call, void_cast = unwrap_call(child, False)
                    if call is not None:
                        ref = call.referenced
                        if ref is not None and \
                                returns_status(ref.result_type):
                            discards.append((call.spelling,
                                             call.location.line, void_cast))
                if kind == ck.CXX_FOR_RANGE_STMT and in_main_file(child):
                    kids = list(child.get_children())
                    if len(kids) >= 2:
                        rng_type = kids[-2].type.spelling
                        if "unordered_" in rng_type:
                            body_text = self._extent_text(child)
                            accum = any(op in body_text
                                        for op in ("+=", "-=", "*=", "/="))
                            unordered.append(
                                ("<range>", child.location.line, accum))
                walk(child, kind)

        walk(tu.cursor, None)
        if decls:
            facts.fn_decls = decls
        # Union with the token-layer discards rather than replacing
        # them: clang contributes type-exact hits the lexer cannot
        # classify, but its statement-shape coverage is narrower, so
        # dropping token hits would make the clang frontend check
        # *less* than a token-only run. Deduplicate per (callee, line)
        # and keep the void_cast flag from whichever layer saw it.
        merged: dict[tuple[str, int], bool] = {}
        for callee, line, vc in facts.discard_calls + discards:
            key = (callee, line)
            merged[key] = merged.get(key, False) or vc
        facts.discard_calls = [
            (callee, line, vc)
            for (callee, line), vc in sorted(merged.items(),
                                             key=lambda kv: kv[0][1])]
        if unordered:
            facts.unordered_iters = unordered

    @staticmethod
    def _extent_text(cursor) -> str:
        try:
            return " ".join(t.spelling for t in cursor.get_tokens())
        except Exception:  # pragma: no cover
            return ""


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------

def _under(virtual_path: str, dirs: tuple[str, ...]) -> bool:
    return any(virtual_path.startswith(d) for d in dirs)


def check_determinism(facts: FileFacts,
                      registry: "Registry") -> list[Finding]:
    out: list[Finding] = []
    vp = facts.virtual_path
    if _under(vp, ORDER_DIRS):
        for var, line, accum in facts.unordered_iters:
            if accum:
                out.append(Finding(
                    "determinism", vp, line,
                    f"iteration over unordered container `{var}` feeds a "
                    f"floating-point accumulation: the sum order follows "
                    f"hash-table layout, which varies with allocation "
                    f"history — iterate a sorted view or index instead"))
        for line in facts.ptr_ordered:
            out.append(Finding(
                "determinism", vp, line,
                "ordered container keyed on a pointer: iteration order "
                "tracks addresses (ASLR, allocator state), so any numeric "
                "consumer loses run-to-run reproducibility — key on a "
                "stable index"))
    if _under(vp, CLOCK_DIRS):
        for name, line in facts.nondet:
            out.append(Finding(
                "determinism", vp, line,
                f"`{name}` is a nondeterminism source in numeric code; "
                f"noise must come from the counter-keyed util::StreamRng "
                f"(seed, stream) so replay/rollback stays bitwise"))
    return out


def check_parallel_capture(facts: FileFacts,
                           registry: "Registry") -> list[Finding]:
    vp = facts.virtual_path
    if not vp.startswith("src/") or vp == "src/util/parallel.hpp":
        return []
    out: list[Finding] = []
    for lam in facts.par_lambdas:
        for w in lam.writes:
            if w.name in lam.locals or w.name in lam.params:
                continue
            by_ref = w.name in lam.ref_captures or (
                lam.default_capture == "&"
                and w.name not in lam.val_captures)
            if not by_ref:
                continue
            if w.index_tokens & (lam.params | lam.locals):
                continue  # disjoint by induction/tid-derived indexing
            if lam.lock_pos is not None and w.pos > lam.lock_pos:
                continue  # mutex-guarded
            if re.search(r"\batomic\b[^;\n]*\b" + re.escape(w.name) + r"\b",
                         facts.text):
                continue  # std::atomic
            verb = {"assign": "assignment to", "incdec": "increment of",
                    "mutate-call": "mutating call on"}[w.kind]
            out.append(Finding(
                "parallel-capture", vp, w.line,
                f"{verb} by-reference capture `{w.name}` inside a "
                f"{lam.fn} lambda: every worker performs this write "
                f"concurrently (no atomic, lock, or "
                f"induction-variable indexing in sight) — a data race "
                f"TSan would only catch on the interleavings it sees"))
    return out


def check_status_propagation(facts: FileFacts,
                             registry: "Registry") -> list[Finding]:
    vp = facts.virtual_path
    out: list[Finding] = []
    for callee, line, void_cast in facts.discard_calls:
        if not registry.returns_status(callee):
            continue
        how = "cast to (void)" if void_cast else "discarded"
        out.append(Finding(
            "status-propagation", vp, line,
            f"result of `{callee}()` is {how}: it carries a "
            f"Status/SolveStatus that reports breakdown, corruption, or "
            f"I/O failure — bind it and branch, or forward it to the "
            f"caller"))
    return out


def check_obs_placement(facts: FileFacts,
                        registry: "Registry") -> list[Finding]:
    vp = facts.virtual_path
    if vp == "src/obs/obs.hpp":
        return []
    out: list[Finding] = []
    for macro, line, literal, loop_depth, fn in facts.obs_sites:
        if not literal:
            out.append(Finding(
                "obs-placement", vp, line,
                f"{macro} name must be a string literal: the metric "
                f"handle is cached per call site, so a computed name "
                f"records every later call under the first name passed"))
        in_kernel_fn = fn.startswith("block_row_")
        if _under(vp, KERNEL_DIRS) and (loop_depth >= 2 or
                                        (in_kernel_fn and loop_depth >= 1)):
            out.append(Finding(
                "obs-placement", vp, line,
                f"{macro} inside a per-row kernel inner loop "
                f"(depth {loop_depth}{', in ' + fn if fn else ''}): even "
                f"disabled, the macro's branch sits in the streaming "
                f"path — hoist it to the per-apply level to keep the "
                f"zero-overhead claim true"))
    return out


def check_no_raw_omp(facts: FileFacts, registry: "Registry") -> list[Finding]:
    vp = facts.virtual_path
    if vp.endswith("util/parallel.hpp"):
        return []
    return [Finding(
        "no-raw-omp", vp, line,
        "raw `#pragma omp parallel` bypasses util/parallel.hpp: the "
        "region would neither run nor be TSan-checked on the std::thread "
        "backend — use util::parallel_regions / util::parallel_for")
        for line in facts.omp_lines]


CHECKERS = {
    "determinism": check_determinism,
    "parallel-capture": check_parallel_capture,
    "status-propagation": check_status_propagation,
    "obs-placement": check_obs_placement,
    "no-raw-omp": check_no_raw_omp,
}


# ---------------------------------------------------------------------------
# Status-function registry
# ---------------------------------------------------------------------------

class Registry:
    """Functions whose return value carries a Status. Built from every
    declaration the frontend saw; a name is eligible only when *all* of
    its declarations return a carrier type (the conservative answer for
    the token frontend — `apply` exists with both Status and void
    returns, so it is never flagged by name alone)."""

    CARRIER_RE = re.compile(r"^(?:\w*Status|\w*Result)$")
    # Factories/accessors of the Status types themselves: calling these
    # bare makes no sense but they are not propagation sites.
    EXCLUDE = {"ok", "to_string", "worse_status"}

    def __init__(self) -> None:
        self.by_name: dict[str, set[str]] = {}

    def add_decls(self, decls: list[tuple[str, str]]) -> None:
        for name, ret in decls:
            self.by_name.setdefault(name, set()).add(ret)

    def returns_status(self, name: str) -> bool:
        if name in self.EXCLUDE:
            return False
        rets = self.by_name.get(name)
        if not rets:
            return False
        return all(self.CARRIER_RE.match(r) for r in rets)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def fingerprint(rule: str, file: str, line_text: str) -> str:
    h = hashlib.sha1(f"{rule}|{file}|{line_text.strip()}".encode())
    return h.hexdigest()[:16]


def analyze_files(frontend: TokenFrontend, files: list[tuple[Path, str]],
                  rules: list[str]) -> tuple[list[Finding], list[Finding]]:
    """Returns (active findings, suppressed findings)."""
    registry = Registry()
    all_facts: list[FileFacts] = []
    for path, vpath in files:
        facts = frontend.index_file(path, vpath)
        registry.add_decls(facts.fn_decls)
        all_facts.append(facts)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for facts in all_facts:
        lines = facts.text.splitlines()
        for rule in rules:
            for f in CHECKERS[rule](facts, registry):
                line_text = lines[f.line - 1] if 0 < f.line <= len(lines) \
                    else ""
                f.fingerprint = fingerprint(f.rule, f.file, line_text)
                sup = facts.suppressions.get(f.line, set())
                if f.rule in sup or "*" in sup:
                    f.suppressed = True
                    suppressed.append(f)
                else:
                    active.append(f)
    active.sort(key=Finding.key)
    suppressed.sort(key=Finding.key)
    return active, suppressed


def repo_files(repo: Path) -> list[tuple[Path, str]]:
    root = repo / "src"
    return [(p, p.relative_to(repo).as_posix())
            for p in sorted(root.rglob("*"))
            if p.suffix in (".hpp", ".cpp", ".h")]


def make_frontend(requested: str, compile_db: Path | None):
    """Returns (frontend, None) or (None, exit_code)."""
    if requested in ("auto", "clang"):
        cindex = load_cindex()
        if cindex is not None:
            return ClangFrontend(cindex, compile_db), None
        if requested == "clang":
            print("mrhs_analyze: libclang (clang.cindex) not available; "
                  "skipping (exit 77). Use --frontend auto|token for the "
                  "built-in fallback.")
            return None, SKIP
    return TokenFrontend(), None


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA_NAME:
        print(f"mrhs_analyze: {path} has schema {doc.get('schema')!r}, "
              f"expected {SCHEMA_NAME!r}", file=sys.stderr)
        sys.exit(2)
    return {f["fingerprint"] for f in doc.get("findings", [])}


def findings_doc(frontend_name: str, findings: list[Finding],
                 suppressed: list[Finding]) -> dict:
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "frontend": frontend_name,
        "rules": sorted(RULES),
        "counts": {
            "active": len(findings),
            "suppressed": len(suppressed),
        },
        "findings": [{
            "rule": f.rule, "file": f.file, "line": f.line,
            "message": f.message, "fingerprint": f.fingerprint,
        } for f in findings],
        "suppressed": [{
            "rule": f.rule, "file": f.file, "line": f.line,
            "fingerprint": f.fingerprint,
        } for f in suppressed],
    }


def print_rules() -> None:
    """Unified rule listing; mrhs_lint.py --list-rules uses the same
    format (name, engine, summary) so the two tools read as one
    surface."""
    print(f"{'rule':<28} {'engine':<12} summary")
    print(f"{'-' * 28} {'-' * 12} {'-' * 40}")
    for name in sorted(RULES):
        print(f"{name:<28} {'mrhs_analyze':<12} {RULES[name]}")


# ---------------------------------------------------------------------------
# Self-test (fixtures + regex-lint cross-check)
# ---------------------------------------------------------------------------

def parse_fixture_directives(text: str) -> tuple[str, dict[str, int]]:
    """(virtual_path, {rule: expected_count}). `expect: none` maps to {}."""
    m = FIXTURE_AS_RE.search(text)
    vpath = m.group(1) if m else "src/core/fixture.cpp"
    expects: dict[str, int] = {}
    for rule, count in FIXTURE_EXPECT_RE.findall(text):
        if rule == "none":
            continue
        expects[rule] = expects.get(rule, 0) + (int(count) if count else 1)
    return vpath, expects


def self_test(frontend: TokenFrontend, repo: Path) -> int:
    fixture_dir = repo / "tests" / "analyze_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"mrhs_analyze: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    crosscheck_rules = {"status-propagation": "solve-status-discarded",
                        "no-raw-omp": "no-raw-omp-parallel"}
    for path in fixtures:
        text = path.read_text()
        vpath, expects = parse_fixture_directives(text)
        active, _ = analyze_files(frontend, [(path, vpath)],
                                  sorted(RULES))
        got: dict[str, int] = {}
        for f in active:
            got[f.rule] = got.get(f.rule, 0) + 1
        ok = got == expects
        status = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
        print(f"  {status} {path.name}: expected {expects or 'none'}, "
              f"got {got or 'none'}")
        if not ok:
            for f in active:
                print(f"        {f.file}:{f.line}: [{f.rule}] {f.message}")
    # Cross-check: the ported rules must agree line-for-line with their
    # regex ancestors in mrhs_lint on the (non-generalized) fixtures.
    sys.path.insert(0, str(Path(__file__).parent))
    import mrhs_lint
    print("  cross-check vs mrhs_lint regex rules:")
    for path in fixtures:
        name = path.name
        if "_general" in name:
            continue  # analyzer-only generalizations, no regex analogue
        if not ("status_propagation" in name or "no_raw_omp" in name):
            continue
        text = path.read_text()
        vpath, _ = parse_fixture_directives(text)
        active, _ = analyze_files(frontend, [(path, vpath)], sorted(RULES))
        linter = mrhs_lint.Linter(repo)
        linter.check_solve_status_discarded(path, text)
        linter.check_no_raw_omp(path, text.splitlines())
        for ast_rule, regex_rule in crosscheck_rules.items():
            ast_lines = sorted(f.line for f in active if f.rule == ast_rule)
            regex_lines = sorted(line for _, line, rule, _ in linter.findings
                                 if rule == regex_rule)
            if ast_lines != regex_lines:
                failures += 1
                print(f"  FAIL {name}: {ast_rule} lines {ast_lines} != "
                      f"{regex_rule} lines {regex_lines}")
            else:
                print(f"  PASS {name}: {ast_rule} == {regex_rule} "
                      f"({len(ast_lines)} finding(s))")
    if failures:
        print(f"mrhs_analyze --self-test: {failures} failure(s)")
        return 1
    print(f"mrhs_analyze --self-test: {len(fixtures)} fixtures ok "
          f"({frontend.name} frontend)")
    return 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json (clang frontend flags; "
                             "defaults to <repo>/build/compile_commands.json "
                             "when present)")
    parser.add_argument("--frontend", choices=["auto", "clang", "token"],
                        default="auto")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="accepted-findings JSON (default: "
                             "scripts/mrhs_analyze_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into --baseline")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable findings document")
    parser.add_argument("--rules", type=str, default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--files", nargs="*", default=None,
                        help="analyze these files instead of src/ (paths "
                             "are used verbatim for scoping)")
    parser.add_argument("--show-suppressed", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tests/analyze_fixtures battery and "
                             "the regex-lint cross-check")
    args = parser.parse_args()

    if args.list_rules:
        print_rules()
        return 0

    repo = args.repo.resolve()
    compile_db = args.compile_db
    if compile_db is None:
        default_db = repo / "build" / "compile_commands.json"
        compile_db = default_db if default_db.exists() else None

    frontend, code = make_frontend(args.frontend, compile_db)
    if frontend is None:
        return code

    if args.self_test:
        return self_test(frontend, repo)

    rules = sorted(RULES)
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"mrhs_analyze: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    if args.files:
        files = [(Path(f).resolve(),
                  Path(f).resolve().relative_to(repo).as_posix()
                  if Path(f).resolve().is_relative_to(repo) else f)
                 for f in args.files]
    else:
        files = repo_files(repo)

    active, suppressed = analyze_files(frontend, files, rules)

    baseline_path = args.baseline or repo / "scripts" / \
        "mrhs_analyze_baseline.json"
    if args.write_baseline:
        doc = findings_doc(frontend.name, active, suppressed)
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"mrhs_analyze: baseline with {len(active)} finding(s) "
              f"written to {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    fresh = [f for f in active if f.fingerprint not in baseline]
    known = [f for f in active if f.fingerprint in baseline]

    if args.json:
        args.json.write_text(
            json.dumps(findings_doc(frontend.name, active, suppressed),
                       indent=2) + "\n")

    for f in fresh:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    if known:
        print(f"mrhs_analyze: {len(known)} baselined finding(s) not shown "
              f"(see {baseline_path.name})")
    if args.show_suppressed:
        for f in suppressed:
            print(f"{f.file}:{f.line}: [suppressed:{f.rule}]")

    n_files = len(files)
    if fresh:
        print(f"\nmrhs_analyze: {len(fresh)} non-baselined finding(s) "
              f"across {n_files} files ({frontend.name} frontend)")
        return 1
    print(f"mrhs_analyze: clean ({n_files} files, {len(suppressed)} "
          f"documented suppression(s), {frontend.name} frontend)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
